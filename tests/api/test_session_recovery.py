"""Session self-healing primitives: consistency checking, recovery
actions, kernel snapshot guards, and the fault hook."""

import numpy as np
import pytest

from repro.api import Problem, Session
from repro.instances import random_uniform_instance
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultSpec, InjectedFault


def make_session(n=10, seed=5):
    return Session(
        Problem(random_uniform_instance(n, rng=np.random.default_rng(seed)))
    )


def session_plan(phase, at=(0,)):
    return FaultPlan(
        specs=(FaultSpec(site="session", phase=phase, at=at),)
    )


class TestCheckConsistency:
    def test_healthy_session_is_consistent(self):
        session = make_session()
        assert session.check_consistency() is None
        session.add_requests([(0, 3)])
        session.remove_requests([session.handles[-1]])
        assert session.check_consistency() is None

    def test_interrupted_admission_is_detected(self):
        session = make_session()
        session.set_fault_hook(session_plan("add_requests:grown"))
        with pytest.raises(InjectedFault):
            session.add_requests([(0, 3)])
        damage = session.check_consistency()
        assert damage is not None
        assert "interrupted" in damage


class TestRecover:
    def test_rebuild_after_half_mutation_matches_cold(self):
        session = make_session()
        session.ensure_live()
        session.add_requests([(0, 3)])
        session.set_fault_hook(
            session_plan("add_requests:grown"), key="cell"
        )
        snap = session.live_kernel.snapshot()
        with pytest.raises(InjectedFault):
            session.add_requests([(1, 4)])
        assert session.recover(snap) == "rebuild"
        assert session.check_consistency() is None

        # Subsequent admissions color bit-identically to a session
        # that never saw the fault.
        session.set_fault_hook(None)
        session.add_requests([(1, 4)])
        session.add_requests([(2, 5)])
        cold = make_session()
        for pairs in ([(0, 3)], [(1, 4)], [(2, 5)]):
            cold.add_requests(pairs)
        assert np.array_equal(
            session.live_result().schedule.colors,
            cold.live_result().schedule.colors,
        )

    def test_snapshot_restore_when_state_intact(self):
        session = make_session()
        session.ensure_live()
        session.set_fault_hook(session_plan("add_requests:pre"))
        snap = session.live_kernel.snapshot()
        colors_before = np.array(session.live_kernel.colors)
        with pytest.raises(InjectedFault):
            session.add_requests([(0, 3)])
        assert session.recover(snap) == "snapshot"
        assert np.array_equal(
            np.array(session.live_kernel.colors), colors_before
        )

    def test_stale_snapshot_falls_back_to_rekernel(self):
        session = make_session()
        session.ensure_live()
        snap = session.live_kernel.snapshot()
        session.add_requests([(0, 3)])  # grows the kernel
        assert session.recover(snap) == "rekernel"
        assert session.live_kernel is None
        # The kernel replays lazily and consistently on next use.
        assert session.live_result().schedule.n == session.active_requests

    def test_recover_without_snapshot(self):
        session = make_session()
        session.ensure_live()
        assert session.recover() == "rekernel"
        assert session.check_consistency() is None

    def test_recovered_removal_state_survives(self):
        # Damage after a departure: recovery must keep the tombstone
        # bookkeeping intact.
        session = make_session()
        session.ensure_live()
        handles = session.add_requests([(0, 3), (1, 4)])
        session.remove_requests([handles[0]])
        session.set_fault_hook(session_plan("add_requests:grown"))
        with pytest.raises(InjectedFault):
            session.add_requests([(2, 5)])
        assert session.recover() == "rebuild"
        assert session.check_consistency() is None
        assert session.active_requests == 11  # 10 initial + 2 - 1


class TestKernelSnapshotGuard:
    def test_restore_across_growth_raises(self):
        session = make_session()
        kernel = session.ensure_live()
        snap = kernel.snapshot()
        session.add_requests([(1, 2)])
        with pytest.raises(ValueError, match="instance growth"):
            session.live_kernel.restore(snap)

    def test_snapshot_records_n(self):
        session = make_session(n=10)
        snap = session.ensure_live().snapshot()
        assert snap["n"] == 10

    def test_same_n_restore_is_bitwise(self):
        session = make_session()
        kernel = session.ensure_live()
        snap = kernel.snapshot()
        colors = np.array(kernel.colors)
        # Mutate: move a request into a fresh class, then restore.
        kernel.remove(0)
        kernel.add(0, kernel.open_class())
        assert not np.array_equal(np.array(kernel.colors), colors)
        kernel.restore(snap)
        assert np.array_equal(np.array(kernel.colors), colors)


class TestFaultHook:
    def test_hook_fires_with_key_and_phase(self):
        session = make_session()
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="session",
                    key="cell-a",
                    phase="add_requests:pre",
                    at=(0,),
                ),
            )
        )
        session.set_fault_hook(plan, key="cell-a")
        with pytest.raises(InjectedFault, match="cell-a"):
            session.add_requests([(0, 3)])

    def test_other_key_does_not_fire(self):
        session = make_session()
        plan = FaultPlan(
            specs=(
                FaultSpec(site="session", key="cell-b", at=(0,)),
            )
        )
        session.set_fault_hook(plan, key="cell-a")
        session.add_requests([(0, 3)])  # no fault
        assert plan.fired == 0

    def test_clearing_the_hook(self):
        session = make_session()
        session.set_fault_hook(session_plan("add_requests:pre"))
        session.set_fault_hook(None)
        session.add_requests([(0, 3)])
        assert session.check_consistency() is None

    def test_empty_add_never_fires(self):
        session = make_session()
        session.set_fault_hook(session_plan("add_requests:pre"))
        session.add_requests([])  # early-out before the injection point
        assert session.check_consistency() is None
