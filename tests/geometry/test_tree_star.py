"""Tests for TreeMetric, centroids, StarMetric and aspect utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.aspect import aspect_ratio, max_distance, min_positive_distance
from repro.geometry.line import LineMetric
from repro.geometry.metric import is_metric_matrix
from repro.geometry.star import StarMetric
from repro.geometry.tree import TreeMetric, find_centroid


def random_tree_edges(n, rng):
    """A random recursive tree with integer weights 1..5."""
    return [
        (int(rng.integers(v)), v, float(rng.integers(1, 6))) for v in range(1, n)
    ]


class TestTreeMetric:
    @pytest.fixture
    def path_tree(self):
        # 0 -2- 1 -3- 2 -1- 3
        return TreeMetric(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)])

    def test_path_distances(self, path_tree):
        assert path_tree.distance(0, 3) == pytest.approx(6.0)
        assert path_tree.distance(1, 3) == pytest.approx(4.0)

    def test_single_node_tree(self):
        tree = TreeMetric(1, [])
        assert tree.n == 1
        assert tree.distance(0, 0) == 0.0

    def test_wrong_edge_count_rejected(self):
        with pytest.raises(ValueError, match="edges"):
            TreeMetric(3, [(0, 1, 1.0)])

    def test_cycle_rejected(self):
        # 3 edges on 3 nodes = cycle
        with pytest.raises(ValueError):
            TreeMetric(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            TreeMetric(4, [(0, 1, 1.0), (0, 1, 2.0), (2, 3, 1.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            TreeMetric(2, [(0, 0, 1.0)])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            TreeMetric(2, [(0, 1, 0.0)])

    def test_neighbors_and_degree(self, path_tree):
        assert path_tree.degree(1) == 2
        assert sorted(v for v, _ in path_tree.neighbors(1)) == [0, 2]

    def test_is_metric(self, rng):
        tree = TreeMetric(10, random_tree_edges(10, rng))
        assert is_metric_matrix(tree.distance_matrix())

    def test_components_after_removal(self, path_tree):
        components = path_tree.subtree_nodes_after_removal(1)
        as_sets = sorted(map(frozenset, components), key=len)
        assert frozenset({0}) in as_sets
        assert frozenset({2, 3}) in as_sets


class TestFindCentroid:
    def test_path_centroid_is_middle(self):
        tree = TreeMetric(5, [(i, i + 1, 1.0) for i in range(4)])
        assert find_centroid(tree) == 2

    def test_star_centroid_is_center(self):
        tree = TreeMetric(6, [(0, v, 1.0) for v in range(1, 6)])
        assert find_centroid(tree) == 0

    def test_centroid_halves_subtrees(self, rng):
        tree = TreeMetric(31, random_tree_edges(31, rng))
        centroid = find_centroid(tree)
        components = tree.subtree_nodes_after_removal(centroid)
        assert all(len(c) <= tree.n // 2 for c in components)

    def test_restricted_to_subtree(self):
        tree = TreeMetric(5, [(i, i + 1, 1.0) for i in range(4)])
        centroid = find_centroid(tree, nodes=[2, 3, 4])
        assert centroid == 3

    def test_disconnected_subset_rejected(self):
        tree = TreeMetric(5, [(i, i + 1, 1.0) for i in range(4)])
        with pytest.raises(ValueError, match="connected"):
            find_centroid(tree, nodes=[0, 4])

    def test_empty_subset_rejected(self):
        tree = TreeMetric(2, [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            find_centroid(tree, nodes=[])


class TestStarMetric:
    def test_pairwise_is_sum_of_radii(self):
        star = StarMetric([1.0, 2.0, 4.0])
        assert star.distance(0, 2) == pytest.approx(5.0)
        assert star.distance(1, 2) == pytest.approx(6.0)

    def test_diagonal_zero(self):
        star = StarMetric([1.0, 2.0])
        assert star.distance(0, 0) == 0.0

    def test_decay(self):
        star = StarMetric([2.0, 3.0])
        assert np.allclose(star.decay(3.0), [8.0, 27.0])

    def test_is_metric(self):
        star = StarMetric([0.5, 1.0, 7.0, 2.0])
        assert is_metric_matrix(star.distance_matrix())

    def test_zero_radius_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            StarMetric([1.0, 0.0])

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0.1, 100, allow_nan=False), min_size=2, max_size=10)
    )
    def test_always_metric(self, radii):
        assert is_metric_matrix(StarMetric(radii).distance_matrix())


class TestAspect:
    def test_values(self, line_metric):
        assert max_distance(line_metric) == pytest.approx(10.0)
        assert min_positive_distance(line_metric) == pytest.approx(1.0)
        assert aspect_ratio(line_metric) == pytest.approx(10.0)

    def test_single_point_has_no_positive_distance(self):
        with pytest.raises(ValueError):
            min_positive_distance(LineMetric([3.0]))
