"""Minimal table abstraction used by the experiment harness.

Experiments return a :class:`Table` (column names plus row dicts) which
benchmarks and examples render with :func:`format_table`.  This keeps
the experiment modules free of any printing concerns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence


@dataclass
class Table:
    """An ordered collection of homogeneous result rows.

    Attributes
    ----------
    title:
        Human-readable experiment name (e.g. ``"E1: directed lower bound"``).
    columns:
        Column names, in display order.
    rows:
        Row dictionaries; missing keys render as ``""``.
    notes:
        Free-form annotations (parameters, seeds, caveats).
    """

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row given as keyword arguments."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"row has columns not in table: {sorted(unknown)}")
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Attach a free-form note rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """Return the values of column *name* across all rows."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in table {self.title!r}")
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def _render_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(table: Table) -> str:
    """Render *table* as a GitHub-flavoured markdown string."""
    header = [str(c) for c in table.columns]
    body = [[_render_cell(row.get(c)) for c in table.columns] for row in table.rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Iterable[str]) -> str:
        padded = (cell.ljust(widths[i]) for i, cell in enumerate(cells))
        return "| " + " | ".join(padded) + " |"

    lines = [f"### {table.title}", ""]
    lines.append(fmt_row(header))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(row) for row in body)
    for note in table.notes:
        lines.append(f"> {note}")
    return "\n".join(lines)
