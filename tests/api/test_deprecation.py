"""Legacy free-function shims: once-per-call-site warnings, bit-identity,
and a clean (warning-free) internal stack."""

import warnings

import numpy as np
import pytest

import repro
from repro._deprecation import (
    ReproDeprecationWarning,
    reset_deprecation_registry,
)
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule as _impl


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_deprecation_registry()
    yield
    reset_deprecation_registry()


@pytest.fixture
def instance():
    return random_uniform_instance(10, rng=13)


@pytest.fixture
def powers(instance):
    return SquareRootPower()(instance)


class TestShims:
    def test_category_is_a_deprecation_warning(self):
        assert issubclass(ReproDeprecationWarning, DeprecationWarning)

    def test_warns_once_per_call_site(self, instance, powers):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                repro.first_fit_schedule(instance, powers)  # one call site
        ours = [
            w for w in caught if issubclass(w.category, ReproDeprecationWarning)
        ]
        assert len(ours) == 1
        assert "Session.schedule('first_fit')" in str(ours[0].message)

    def test_two_call_sites_warn_twice(self, instance, powers):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.first_fit_schedule(instance, powers)
            repro.first_fit_schedule(instance, powers)  # distinct line
        ours = [
            w for w in caught if issubclass(w.category, ReproDeprecationWarning)
        ]
        assert len(ours) == 2

    def test_reset_rearms_a_call_site(self, instance, powers):
        def call():
            return repro.trivial_schedule(instance)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call()
            call()
            reset_deprecation_registry()
            call()
        ours = [
            w for w in caught if issubclass(w.category, ReproDeprecationWarning)
        ]
        assert len(ours) == 2

    def test_shim_is_bit_identical_to_impl(self, instance, powers):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ReproDeprecationWarning)
            shimmed = repro.first_fit_schedule(instance, powers)
        ref = _impl(instance, powers)
        np.testing.assert_array_equal(shimmed.colors, ref.colors)
        np.testing.assert_array_equal(shimmed.powers, ref.powers)

    def test_every_scheduling_export_is_shimmed(self):
        import repro.scheduling as sched

        for name in (
            "trivial_schedule",
            "first_fit_schedule",
            "first_fit_free_power_schedule",
            "peeling_schedule",
            "rescale_gain_coloring",
            "densest_subset_at_gain",
            "sqrt_coloring",
            "improve_schedule",
            "distributed_coloring",
            "exact_minimum_colors",
            "protocol_schedule",
        ):
            shim = getattr(sched, name)
            assert hasattr(shim, "__wrapped__"), name
            assert "deprecated" in (shim.__doc__ or ""), name
            # The top-level re-export is the same shim object.
            if hasattr(repro, name):
                assert getattr(repro, name) is shim, name


class TestInternalStackIsClean:
    """No internal module (runner, experiments, CLI) may trigger a shim."""

    def test_orchestrator_run_is_warning_free(self):
        from repro.runner.orchestrator import run_experiments

        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            reports = run_experiments(["e9"], fast=True)
        assert len(reports) == 1 and len(reports[0].table) > 0

    def test_cli_listing_is_warning_free(self, capsys):
        from repro.experiments.__main__ import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            assert main(["--list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "first_fit" in out and "certifiable" in out

    def test_session_path_is_warning_free(self, instance):
        from repro.api import Problem

        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            Problem(instance).session().schedule("first_fit")
