"""E5 — regenerate the Propositions 3 & 4 gain-rescaling table."""

from repro.experiments import run_gain_scaling


def test_e05_gain_scaling(benchmark, save_table):
    table = benchmark.pedantic(
        run_gain_scaling,
        kwargs=dict(n=40, scale_factors=(1.0, 2.0, 4.0, 8.0), trials=3, rng=7),
        rounds=1,
        iterations=1,
    )
    save_table("e05_gain_scaling", table)
    for row in table.rows:
        assert row["blowup"] <= row["envelope_s_logn"] + 1.0
        assert row["densest_class"] >= row["prop3_bound"] - 1e-9
