"""Multi-hop extension benchmark: routing + layered scheduling.

Measures the end-to-end latency profile of the cross-layer pipeline
(§1.3's Chafekar et al. setting) on a random deployment, and records
the table to ``benchmarks/results/multihop.md``.
"""

import numpy as np

from repro.geometry.euclidean import EuclideanMetric
from repro.multihop.routing import route_requests
from repro.multihop.scheduling import layered_multihop_schedule
from repro.util.tables import Table


def _run(n_nodes: int, n_requests: int, seed: int):
    rng = np.random.default_rng(seed)
    metric = EuclideanMetric(rng.uniform(0, 80, size=(n_nodes, 2)))
    requests = []
    while len(requests) < n_requests:
        u, v = rng.integers(n_nodes, size=2)
        if u != v:
            requests.append((int(u), int(v)))
    routes = route_requests(metric, requests, transmission_range=35.0)
    return routes, layered_multihop_schedule(metric, routes, beta=0.8)


def test_multihop_pipeline(benchmark, save_table):
    routes, result = benchmark.pedantic(
        _run, args=(40, 12, 7), rounds=1, iterations=1
    )
    table = Table(
        title="Multi-hop: layered scheduling on a 40-node deployment",
        columns=["requests", "max_hops", "total_slots", "mean_latency", "max_latency"],
    )
    table.add_row(
        requests=len(routes),
        max_hops=max(r.hop_count for r in routes),
        total_slots=result.total_slots,
        mean_latency=result.mean_latency,
        max_latency=result.max_latency,
    )
    save_table("multihop", table)
    assert result.total_slots >= max(r.hop_count for r in routes)
