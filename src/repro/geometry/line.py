"""One-dimensional Euclidean metric.

The Theorem 1 lower-bound family lives on the line, so a dedicated
class keeps those constructions readable and exact (no square roots).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.metric import Metric


class LineMetric(Metric):
    """Metric induced by coordinates on the real line."""

    def __init__(self, coordinates: Sequence[float]):
        super().__init__()
        coords = np.asarray(coordinates, dtype=float).reshape(-1)
        if coords.size == 0:
            raise ValueError("coordinate list must be non-empty")
        if not np.all(np.isfinite(coords)):
            raise ValueError("coordinates must be finite")
        self._coords = coords.copy()
        self._coords.setflags(write=False)

    @property
    def n(self) -> int:
        return self._coords.size

    @property
    def coordinates(self) -> np.ndarray:
        """The coordinate vector (read-only)."""
        return self._coords

    def _compute_matrix(self) -> np.ndarray:
        return np.abs(self._coords[:, None] - self._coords[None, :])
