"""Feasibility with free (non-oblivious) power assignments.

Theorem 1 compares oblivious assignments against an *optimal* power
assignment.  Deciding whether a set of requests can share one color
under *some* power vector is classic power-control theory
(Zander 1992; Foschini-Miljanic 1993):

* **Directed.**  The constraints ``p_i / l_i >= beta * sum_j p_j /
  l(u_j, v_i)`` can be written ``p >= B p`` with the non-negative
  matrix ``B[i, j] = beta * l_i / l(u_j, v_i)`` (zero diagonal).  A
  strictly positive ``p`` with ``p > B p`` exists iff the spectral
  radius ``rho(B) < 1``; then ``p = (I - B)^{-1} 1 > 0`` works.

* **Bidirectional.**  Interference takes a ``min`` of losses over the
  two endpoints of the interfering pair and a ``max`` over the two
  decoding endpoints, so the constraint map ``T(p)_i = beta * l_i *
  max((B_u p)_i, (B_v p)_i)`` is nonlinear but *monotone and
  positively homogeneous*.  Nonlinear Perron-Frobenius theory supplies
  a growth factor (Collatz-Wielandt number) computed here by power
  iteration; feasibility is again ``rho(T) < 1``, and the fixed point
  of ``p = T(p) + 1`` provides strictly feasible powers.

Infinite entries (pairs sharing a node) make the set infeasible for
every power assignment and are reported as ``rho = inf``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import InfeasibleError
from repro.core.instance import Direction, Instance


def _directed_matrix(instance: Instance, beta: float) -> np.ndarray:
    """The directed power-control matrix ``B`` for the full instance."""
    loss = instance.metric.loss_matrix(instance.alpha)
    cross = loss[np.ix_(instance.receivers, instance.senders)]  # [i, j] = l(u_j, v_i)
    with np.errstate(divide="ignore"):
        inv = np.where(cross > 0, 1.0 / cross, np.inf)
    matrix = beta * instance.link_losses[:, None] * inv
    np.fill_diagonal(matrix, 0.0)
    return matrix


def _bidirectional_matrices(instance: Instance, beta: float) -> Tuple[np.ndarray, np.ndarray]:
    """The two endpoint matrices ``B_u`` and ``B_v`` (rows scaled by
    ``beta * l_i``)."""
    loss = instance.metric.loss_matrix(instance.alpha)
    s, r = instance.senders, instance.receivers
    min_at_u = np.minimum(loss[np.ix_(s, s)], loss[np.ix_(s, r)])
    min_at_v = np.minimum(loss[np.ix_(r, s)], loss[np.ix_(r, r)])
    with np.errstate(divide="ignore"):
        inv_u = np.where(min_at_u > 0, 1.0 / min_at_u, np.inf)
        inv_v = np.where(min_at_v > 0, 1.0 / min_at_v, np.inf)
    matrix_u = beta * instance.link_losses[:, None] * inv_u
    matrix_v = beta * instance.link_losses[:, None] * inv_v
    np.fill_diagonal(matrix_u, 0.0)
    np.fill_diagonal(matrix_v, 0.0)
    return matrix_u, matrix_v


def _constraint_map(
    instance: Instance, subset: Optional[Sequence[int]], beta: Optional[float]
) -> Tuple[Callable[[np.ndarray], np.ndarray], int, bool]:
    """Build the monotone homogeneous constraint map ``T`` restricted to
    *subset*; returns ``(T, size, has_infinite_entry)``."""
    beta = instance.beta if beta is None else float(beta)
    if subset is None:
        idx = np.arange(instance.n)
    else:
        idx = np.asarray(subset, dtype=int)
    if instance.direction is Direction.DIRECTED:
        matrix = _directed_matrix(instance, beta)[np.ix_(idx, idx)]
        has_inf = bool(np.any(np.isinf(matrix)))
        finite = np.where(np.isinf(matrix), 0.0, matrix)

        def apply_map(p: np.ndarray) -> np.ndarray:
            return finite @ p

        return apply_map, idx.size, has_inf

    matrix_u, matrix_v = _bidirectional_matrices(instance, beta)
    matrix_u = matrix_u[np.ix_(idx, idx)]
    matrix_v = matrix_v[np.ix_(idx, idx)]
    has_inf = bool(np.any(np.isinf(matrix_u)) or np.any(np.isinf(matrix_v)))
    finite_u = np.where(np.isinf(matrix_u), 0.0, matrix_u)
    finite_v = np.where(np.isinf(matrix_v), 0.0, matrix_v)

    def apply_map(p: np.ndarray) -> np.ndarray:
        return np.maximum(finite_u @ p, finite_v @ p)

    return apply_map, idx.size, has_inf


def free_power_spectral_radius(
    instance: Instance,
    subset: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
    iterations: int = 200,
    tol: float = 1e-10,
) -> float:
    """Growth factor of the power-control constraint map on *subset*.

    Values ``< 1`` mean some power assignment lets the subset share a
    color; ``inf`` means two requests share a node.  Computed by power
    iteration (exact spectral radius in the directed/linear case, the
    Collatz-Wielandt number in the bidirectional case).
    """
    if instance.direction is Direction.DIRECTED:
        # The directed constraint map is linear: compute the spectral
        # radius exactly from the eigenvalues.
        beta_val = instance.beta if beta is None else float(beta)
        idx = np.arange(instance.n) if subset is None else np.asarray(subset, int)
        if idx.size <= 1:
            return 0.0
        matrix = _directed_matrix(instance, beta_val)[np.ix_(idx, idx)]
        if np.any(np.isinf(matrix)):
            return float("inf")
        return float(np.max(np.abs(np.linalg.eigvals(matrix))))

    apply_map, size, has_inf = _constraint_map(instance, subset, beta)
    if has_inf:
        return float("inf")
    if size <= 1:
        return 0.0
    # Power-iterate the damped map S(v) = T(v) + v, whose growth factor
    # is rho(T) + 1.  The identity term keeps the iterate strictly
    # positive and makes the map aperiodic, so the iteration converges
    # even for bipartite interference structures (where iterating T
    # itself oscillates with period two).  The Collatz-Wielandt bounds
    # min_i S(v)_i/v_i <= rho(S) <= max_i S(v)_i/v_i certify
    # convergence; the returned value is the (sound) upper bound.
    vector = np.ones(size)
    upper = np.inf
    for _ in range(iterations):
        image = apply_map(vector) + vector
        ratios = image / vector
        upper = float(np.max(ratios)) - 1.0
        lower = float(np.min(ratios)) - 1.0
        if upper - lower <= tol * max(1.0, upper):
            break
        vector = image / float(np.max(image))
    return max(0.0, upper)


def free_power_feasible(
    instance: Instance,
    subset: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
    margin: float = 1e-9,
) -> bool:
    """Can *subset* share one color under *some* power assignment?"""
    return free_power_spectral_radius(instance, subset, beta) < 1.0 - margin


def free_powers(
    instance: Instance,
    subset: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
    iterations: int = 10_000,
    tol: float = 1e-12,
    slack: float = 1e-6,
) -> np.ndarray:
    """A strictly feasible power vector for *subset*, if one exists.

    Solves ``p = (1 + slack) * T(p) + 1`` by monotone fixed-point
    iteration from ``p = 1``; the result then satisfies
    ``p >= (1 + slack) * T(p)``, i.e. every SINR margin is at least
    ``1 + slack`` — robust against the additive constant vanishing in
    floating point when the growth factor is close to one.  If the
    slacked map is supercritical, the slack is halved until it fits.

    Raises
    ------
    InfeasibleError
        If no power assignment makes the subset simultaneously
        schedulable.
    """
    radius = free_power_spectral_radius(instance, subset, beta)
    if not radius < 1.0:
        raise InfeasibleError(
            f"subset is infeasible for every power assignment (rho={radius:g})"
        )
    if radius > 0:
        slack = min(slack, 0.5 * (1.0 / radius - 1.0))
    slack = max(slack, 0.0)
    apply_map, size, _ = _constraint_map(instance, subset, beta)
    factor = 1.0 + slack
    p = np.ones(size)
    for _ in range(iterations):
        new_p = factor * apply_map(p) + 1.0
        if np.max(np.abs(new_p - p)) <= tol * np.max(new_p):
            p = new_p
            break
        p = new_p
    return p
