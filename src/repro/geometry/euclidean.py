"""Euclidean metrics over explicit point sets in R^d."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.geometry.metric import Metric


class EuclideanMetric(Metric):
    """The Euclidean metric over a finite point set in R^d.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)`` (or ``(n,)`` for points on the
        line, which is reshaped to ``(n, 1)``).
    """

    def __init__(self, points: Union[np.ndarray, Sequence[Sequence[float]]]):
        super().__init__()
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[:, None]
        if points.ndim != 2:
            raise ValueError(f"points must be (n, d), got shape {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("point set must be non-empty")
        if not np.all(np.isfinite(points)):
            raise ValueError("points must be finite")
        self._points = points.copy()
        self._points.setflags(write=False)

    @property
    def n(self) -> int:
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Ambient dimension d."""
        return self._points.shape[1]

    @property
    def points(self) -> np.ndarray:
        """The ``(n, d)`` coordinate array (read-only)."""
        return self._points

    def _compute_matrix(self) -> np.ndarray:
        diff = self._points[:, None, :] - self._points[None, :, :]
        return np.sqrt(np.sum(diff * diff, axis=-1))

    # Tiled access (see Metric.pair_distances / Metric.distance_block):
    # computed straight from the coordinates with the exact elementwise
    # operations of _compute_matrix — subtract, square, sum over the
    # coordinate axis, sqrt — so every entry is bit-identical to the
    # corresponding full-matrix entry without ever building the matrix.

    def pair_distances(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        us = np.asarray(us, dtype=int)
        vs = np.asarray(vs, dtype=int)
        diff = self._points[us] - self._points[vs]
        return np.sqrt(np.sum(diff * diff, axis=-1))

    def distance_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        a = self._points[rows]
        b = self._points[cols]
        if self.dim < 8:
            # Accumulate squared differences one coordinate at a time:
            # (r, c) scratch per dimension instead of an (r, c, d)
            # broadcast.  For fewer than 8 summands NumPy's axis-sum is
            # a plain left-to-right reduction, so this accumulation
            # order (and hence every bit) matches _compute_matrix.
            total = np.zeros((a.shape[0], b.shape[0]))
            for k in range(self.dim):
                diff = a[:, k, None] - b[None, :, k]
                diff *= diff
                total += diff
            return np.sqrt(total)
        diff = a[:, None, :] - b[None, :, :]
        return np.sqrt(np.sum(diff * diff, axis=-1))
