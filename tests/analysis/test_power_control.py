"""Tests for free-power (power-control) feasibility."""

import numpy as np
import pytest

from repro.core.errors import InfeasibleError
from repro.core.feasibility import sinr_margins
from repro.core.instance import Direction, Instance
from repro.analysis.power_control import (
    free_power_feasible,
    free_power_spectral_radius,
    free_powers,
)
from repro.geometry.line import LineMetric


class TestSpectralRadius:
    def test_two_far_links_subcritical(self, two_link_directed):
        assert free_power_spectral_radius(two_link_directed) < 0.01

    def test_exact_two_by_two(self):
        # For two directed links the radius is sqrt(B01 * B10).
        metric = LineMetric([0.0, 1.0, 3.0, 4.0])
        inst = Instance.directed(metric, [(0, 1), (2, 3)], alpha=3.0, beta=1.0)
        # B[0,1] = l0 / l(u1, v0) = 1 / 2^3; B[1,0] = l1 / l(u0, v1) = 1 / 4^3.
        expected = np.sqrt((1.0 / 8.0) * (1.0 / 64.0))
        assert free_power_spectral_radius(inst) == pytest.approx(
            expected, rel=1e-6
        )

    def test_shared_node_is_infinite(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.directed(metric, [(0, 1), (1, 2)])
        assert free_power_spectral_radius(inst) == np.inf

    def test_singleton_is_zero(self, two_link_directed):
        assert free_power_spectral_radius(two_link_directed, subset=[0]) == 0.0

    def test_beta_scales_linearly_directed(self, two_link_directed):
        r1 = free_power_spectral_radius(two_link_directed, beta=1.0)
        r2 = free_power_spectral_radius(two_link_directed, beta=2.0)
        assert r2 == pytest.approx(2 * r1, rel=1e-6)

    def test_bidirectional_at_least_directed(self):
        metric = LineMetric([0.0, 2.0, 3.0, 7.0])
        bidir = Instance.bidirectional(metric, [(0, 1), (2, 3)])
        direct = bidir.with_direction(Direction.DIRECTED)
        assert free_power_spectral_radius(bidir) >= free_power_spectral_radius(
            direct
        ) * (1 - 1e-9)


class TestFreePowerFeasible:
    def test_far_links(self, two_link_directed, two_link_instance):
        assert free_power_feasible(two_link_directed)
        assert free_power_feasible(two_link_instance)

    def test_shared_node_infeasible(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        assert not free_power_feasible(inst)

    def test_interleaved_links_infeasible(self):
        # Two long interleaved links: each sender sits closer to the
        # other's receiver than its own, defeating every power choice.
        metric = LineMetric([0.0, 10.0, 1.0, 11.0])
        inst = Instance.directed(metric, [(0, 1), (2, 3)], alpha=3.0, beta=1.0)
        # B01 = 1000/9^3 > 1 while B10 = 1000/11^3, product > 1.
        assert free_power_spectral_radius(inst) > 1.0
        assert not free_power_feasible(inst)

    def test_nested_directed_pairwise_feasible(self):
        from repro.instances.nested import nested_instance

        inst = nested_instance(2, beta=1.0, direction=Direction.DIRECTED)
        # Adjacent nested pairs are pairwise schedulable (rho ~ 0.84).
        assert free_power_feasible(inst)


class TestFreePowers:
    def test_produces_strictly_feasible_powers(self, two_link_instance):
        powers = free_powers(two_link_instance)
        margins = sinr_margins(
            two_link_instance, powers, colors=np.zeros(2, dtype=int)
        )
        assert np.all(margins > 1.0)

    def test_directed_neumann_solution(self, two_link_directed):
        powers = free_powers(two_link_directed)
        margins = sinr_margins(
            two_link_directed, powers, colors=np.zeros(2, dtype=int)
        )
        assert np.all(margins > 1.0)

    def test_infeasible_raises(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        with pytest.raises(InfeasibleError):
            free_powers(inst)

    def test_near_critical_sets_still_get_margin(self):
        # The nested directed instance at beta=0.3 is close to critical
        # but feasible; powers must still have margins >= 1.
        from repro.instances.nested import nested_instance

        inst = nested_instance(16, beta=0.3, direction=Direction.DIRECTED)
        assert free_power_feasible(inst)
        powers = free_powers(inst)
        margins = sinr_margins(inst, powers, colors=np.zeros(16, dtype=int))
        assert np.all(margins >= 1.0 - 1e-9)

    def test_subset_powers(self, two_link_instance):
        powers = free_powers(two_link_instance, subset=[1])
        assert powers.shape == (1,)
        assert powers[0] > 0
