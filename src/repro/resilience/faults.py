"""Deterministic fault injection for the execution layers.

A :class:`FaultPlan` is a picklable list of :class:`FaultSpec` triggers
plus per-site occurrence counters.  Code under test calls
:meth:`FaultPlan.fire` at explicit *injection points*; when the
occurrence index at that point matches a spec, the plan acts:

``"raise"``
    raise :class:`InjectedFault` (an ordinary exception — exercises
    retry, quarantine and rollback paths),
``"delay"``
    sleep ``delay_s`` seconds (exercises deadline paths),
``"kill"``
    ``SIGKILL`` the current process (exercises ``BrokenProcessPool``
    recovery when fired inside a pool worker, and checkpoint/resume
    when fired in the orchestrator parent).

Injection points in the tree
----------------------------
* ``site="shard"``, ``key="<spec_id>:<shard_index>"`` — inside
  :func:`repro.runner.orchestrator.run_shard`, with ``index`` set to
  the shard's **attempt number** (explicit, so firing stays
  deterministic across worker processes and pool rebuilds).
* ``site="checkpoint"``, ``key="<spec_id>:<shard_index>"`` — in the
  orchestrator parent, right after that shard's checkpoint is written.
* ``site="session"``, ``key="<session name>"``,
  ``phase="add_requests:pre" | "add_requests:grown"`` — inside
  :meth:`repro.api.Session.add_requests` (installed by the serve layer
  via :meth:`repro.api.Session.set_fault_hook`): ``pre`` fires before
  any mutation, ``grown`` fires after the instance/context have grown
  but before the arrival is fully accounted — a genuinely half-mutated
  session.

Determinism: occurrence counters are keyed ``(site, key, phase)`` and
advance by exactly one per :meth:`fire` call, so a plan replays
identically for an identical call sequence.  :meth:`FaultPlan.seeded`
derives pseudo-random occurrence indices from a seed for soak-style
tests without giving up replayability.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Exit status a ``"kill"`` fault dies with (SIGKILL), exposed so tests
#: can assert the process terminated by injection rather than crashed.
FAULT_KILL_EXIT = -signal.SIGKILL

_KINDS = ("raise", "delay", "kill")


class InjectedFault(RuntimeError):
    """The exception a ``"raise"`` fault throws at its injection point."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic trigger of a :class:`FaultPlan`.

    Parameters
    ----------
    site:
        Injection-point family (``"shard"``, ``"checkpoint"``,
        ``"session"``, ...).
    kind:
        ``"raise"``, ``"delay"`` or ``"kill"`` (see module docstring).
    key:
        Optional site-specific key filter (shard id, session name);
        ``None`` matches every key at the site.
    at:
        Occurrence indices (0-based) at which the fault fires — for the
        ``"shard"`` site these are *attempt numbers*, elsewhere they
        count :meth:`FaultPlan.fire` calls per ``(site, key, phase)``.
    phase:
        Optional sub-point filter within a site (e.g.
        ``"add_requests:grown"``); ``None`` matches every phase.
    delay_s:
        Sleep duration for ``"delay"`` faults.
    message:
        Text carried by the :class:`InjectedFault` of ``"raise"`` faults.
    """

    site: str
    kind: str = "raise"
    key: Optional[str] = None
    at: Tuple[int, ...] = (0,)
    phase: Optional[str] = None
    delay_s: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        object.__setattr__(self, "at", tuple(int(a) for a in self.at))
        if any(a < 0 for a in self.at):
            raise ValueError(f"at indices must be >= 0, got {self.at}")
        if self.kind == "delay" and self.delay_s <= 0:
            raise ValueError("delay faults need delay_s > 0")

    def matches(
        self, site: str, key: Optional[str], phase: Optional[str], index: int
    ) -> bool:
        return (
            self.site == site
            and (self.key is None or self.key == key)
            and (self.phase is None or self.phase == phase)
            and index in self.at
        )


@dataclass
class FaultPlan:
    """A deterministic set of fault triggers plus occurrence counters.

    Plans are picklable (counters included) so the orchestrator can
    ship them into pool workers; the ``"shard"`` site sidesteps
    cross-process counter drift entirely by passing the attempt number
    explicitly.
    """

    specs: Tuple[FaultSpec, ...] = ()
    #: Per-``(site, key, phase)`` occurrence counters (mutable state).
    counts: Dict[Tuple[str, Optional[str], Optional[str]], int] = field(
        default_factory=dict
    )
    #: Total faults this plan instance has fired (per process).
    fired: int = 0

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        site: str,
        kind: str = "raise",
        key: Optional[str] = None,
        phase: Optional[str] = None,
        occurrences: int = 1,
        horizon: int = 64,
        delay_s: float = 0.0,
    ) -> "FaultPlan":
        """A plan whose firing indices are drawn deterministically from
        *seed*: *occurrences* distinct indices in ``[0, horizon)``.

        Reproducible chaos: the same seed always yields the same plan,
        so a failure found by a seeded soak run replays exactly.
        """
        import numpy as np

        if occurrences < 1:
            raise ValueError("occurrences must be >= 1")
        if horizon < occurrences:
            raise ValueError("horizon must be >= occurrences")
        rng = np.random.default_rng(seed)
        at = tuple(
            sorted(
                int(i)
                for i in rng.choice(horizon, size=occurrences, replace=False)
            )
        )
        return cls(
            specs=(
                FaultSpec(
                    site=site,
                    kind=kind,
                    key=key,
                    at=at,
                    phase=phase,
                    delay_s=delay_s,
                    message=f"injected fault (seed={seed})",
                ),
            )
        )

    def fire(
        self,
        site: str,
        key: Optional[str] = None,
        phase: Optional[str] = None,
        index: Optional[int] = None,
    ) -> None:
        """Hit the injection point ``(site, key, phase)``.

        With *index* omitted the plan's own per-point occurrence
        counter supplies it (and advances by one); the orchestrator
        passes the shard attempt number explicitly instead.  Acts on
        the first matching spec: raises, sleeps, or kills the process.
        """
        if index is None:
            counter_key = (site, key, phase)
            index = self.counts.get(counter_key, 0)
            self.counts[counter_key] = index + 1
        for spec in self.specs:
            if not spec.matches(site, key, phase, index):
                continue
            self.fired += 1
            if spec.kind == "delay":
                time.sleep(spec.delay_s)
                return
            if spec.kind == "kill":
                # SIGKILL, not sys.exit: the point is to simulate an
                # OOM-killed / power-lost process that gets no chance
                # to clean up.
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(
                f"{spec.message} [site={site} key={key} phase={phase} "
                f"occurrence={index}]"
            )

    def reset(self) -> None:
        """Zero the occurrence counters (new run, same triggers)."""
        self.counts.clear()
        self.fired = 0


def fault_points(specs: Sequence[FaultSpec]) -> List[str]:
    """Human-readable summary of a plan's triggers (for logs/tests)."""
    return [
        f"{s.site}:{s.key or '*'}:{s.phase or '*'}@{','.join(map(str, s.at))}"
        f"->{s.kind}"
        for s in specs
    ]
