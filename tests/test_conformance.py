"""Cross-algorithm conformance suite.

Every scheduler in :mod:`repro.scheduling` is run over a shared grid
of instances — directed x bidirectional, Euclidean / line / tree
metrics, n in {1, 2, 8, 32}, plus shared-node adversarial cases — and
every emitted schedule must satisfy
:func:`repro.core.feasibility.is_feasible_partition`.

The whole grid runs twice: once with the shared interference engine on
the call path (the default) and once with it disabled
(:func:`repro.core.context.engine_disabled` restores the pre-engine
from-scratch computation), so a regression in either path — or any
divergence in feasibility semantics between them — fails loudly.
"""

import contextlib

import numpy as np
import pytest

from repro.core.context import clear_context_cache, engine_disabled
from repro.core.kernels import kernels_disabled
from repro.core.feasibility import is_feasible_partition
from repro.core.instance import Direction, Instance
from repro.geometry.line import LineMetric
from repro.instances.line_instances import equispaced_line_instance
from repro.instances.random_instances import (
    random_tree_metric_instance,
    random_uniform_instance,
)
from repro.power.oblivious import SquareRootPower
from repro.scheduling.distributed import distributed_coloring
from repro.scheduling.exact import MAX_EXACT_N, exact_minimum_colors
from repro.scheduling.firstfit import (
    first_fit_free_power_schedule,
    first_fit_schedule,
)
from repro.scheduling.gain_scaling import rescale_gain_coloring
from repro.scheduling.local_search import improve_schedule
from repro.scheduling.peeling import peeling_schedule
from repro.scheduling.protocol_model import protocol_schedule
from repro.scheduling.sqrt_coloring import sqrt_coloring
from repro.scheduling.trivial import trivial_schedule

SIZES = (1, 2, 8, 32)


def _shared_node_instance(direction: Direction) -> Instance:
    """Adversarial chain where consecutive requests share a node —
    infinite mutual gain, so no two of them may ever share a color."""
    metric = LineMetric([0.0, 1.0, 2.5, 4.5, 7.0])
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4)]
    return Instance(
        metric,
        [p[0] for p in pairs],
        [p[1] for p in pairs],
        direction=direction,
    )


def _build_grid():
    grid = {}
    for direction in (Direction.DIRECTED, Direction.BIDIRECTIONAL):
        tag = direction.value[:3]
        for n in SIZES:
            grid[f"euclid-{tag}-n{n}"] = random_uniform_instance(
                n, rng=100 + n, direction=direction
            )
            grid[f"line-{tag}-n{n}"] = equispaced_line_instance(
                n, direction=direction
            )
            grid[f"tree-{tag}-n{n}"] = random_tree_metric_instance(
                n, rng=200 + n, direction=direction
            )
        grid[f"shared-node-{tag}"] = _shared_node_instance(direction)
    return grid


GRID = _build_grid()


def _schedulers():
    def fixed_power(fn):
        def run(instance, rng):
            powers = SquareRootPower()(instance)
            return fn(instance, powers)

        return run

    return {
        "trivial": lambda instance, rng: trivial_schedule(instance),
        "first_fit": fixed_power(first_fit_schedule),
        "first_fit_free_power": lambda instance, rng: (
            first_fit_free_power_schedule(instance)
        ),
        "peeling": fixed_power(peeling_schedule),
        "gain_scaling": fixed_power(
            lambda instance, powers: rescale_gain_coloring(
                instance, powers, gamma_target=2.0 * instance.beta
            )
        ),
        "sqrt_coloring": lambda instance, rng: sqrt_coloring(instance, rng=rng)[0],
        "sqrt_coloring_no_lp": lambda instance, rng: (
            sqrt_coloring(instance, rng=rng, use_lp=False)[0]
        ),
        "local_search": fixed_power(
            lambda instance, powers: improve_schedule(
                instance, first_fit_schedule(instance, powers)
            )
        ),
        "distributed": lambda instance, rng: distributed_coloring(
            instance, rng=rng
        )[0],
        "exact": lambda instance, rng: exact_minimum_colors(
            instance, SquareRootPower()(instance)
        )[1],
        "protocol_model": fixed_power(
            lambda instance, powers: protocol_schedule(instance, powers)[0]
        ),
    }


SCHEDULERS = _schedulers()


@pytest.fixture(params=["engine", "legacy"])
def engine_mode(request):
    """Run the test body with the context engine enabled or disabled."""
    clear_context_cache()
    if request.param == "legacy":
        with engine_disabled():
            yield request.param
    else:
        yield request.param
    clear_context_cache()


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("instance_name", sorted(GRID))
def test_scheduler_emits_feasible_partition(
    engine_mode, instance_name, scheduler_name
):
    instance = GRID[instance_name]
    if scheduler_name == "exact" and instance.n > MAX_EXACT_N:
        pytest.skip(f"exact solver caps at n={MAX_EXACT_N}")
    scheduler = SCHEDULERS[scheduler_name]
    schedule = scheduler(instance, np.random.default_rng(99))

    assert schedule.colors.shape == (instance.n,)
    assert np.all(schedule.colors >= 0)
    assert np.all(schedule.powers > 0)
    assert is_feasible_partition(instance, schedule.powers, schedule.colors), (
        f"{scheduler_name} emitted an infeasible schedule on {instance_name} "
        f"({engine_mode} path)"
    )


@pytest.mark.parametrize("instance_name", sorted(GRID))
def test_gain_scaling_respects_target(engine_mode, instance_name):
    """The rescaled coloring must be feasible at the *stricter* gain."""
    instance = GRID[instance_name]
    powers = SquareRootPower()(instance)
    target = 2.0 * instance.beta
    schedule = rescale_gain_coloring(instance, powers, gamma_target=target)
    assert is_feasible_partition(
        instance, schedule.powers, schedule.colors, beta=target
    )


#: The four engine/kernels toggle combinations: every scheduler must
#: emit an *identical* schedule on each (kernels only matter when the
#: engine is on, but the combination must still hold trivially).
TOGGLE_COMBOS = {
    "engine+kernels": (),
    "engine-only": ("kernels",),
    "legacy+kernels": ("engine",),
    "legacy-only": ("engine", "kernels"),
}


def _toggle_stack(disabled):
    stack = contextlib.ExitStack()
    if "engine" in disabled:
        stack.enter_context(engine_disabled())
    if "kernels" in disabled:
        stack.enter_context(kernels_disabled())
    return stack


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize(
    "instance_name",
    sorted(
        name
        for name in GRID
        if name.endswith(("n8", "n32")) or "shared-node" in name
    ),
)
def test_all_toggle_combinations_emit_identical_schedules(
    instance_name, scheduler_name
):
    """Satellite coverage: engine_disabled() and kernels_disabled()
    nest in all four on/off combinations, and every combination must
    produce the same schedule (randomized schedulers get identical
    seeds per combination)."""
    instance = GRID[instance_name]
    if scheduler_name == "exact" and instance.n > MAX_EXACT_N:
        pytest.skip(f"exact solver caps at n={MAX_EXACT_N}")
    scheduler = SCHEDULERS[scheduler_name]
    results = {}
    for combo, disabled in TOGGLE_COMBOS.items():
        clear_context_cache()
        with _toggle_stack(disabled):
            schedule = scheduler(instance, np.random.default_rng(99))
        results[combo] = schedule.colors
    reference = results["engine+kernels"]
    for combo, colors in results.items():
        np.testing.assert_array_equal(
            colors,
            reference,
            err_msg=(
                f"{scheduler_name} on {instance_name}: schedule under "
                f"{combo} differs from engine+kernels"
            ),
        )


#: Session.schedule equivalents of the legacy free-function calls
#: above: ``(algorithm, session params)`` keyed like SCHEDULERS.  The
#: registry facade must reproduce every legacy schedule bit-for-bit on
#: every gain backend (epsilon=0 sparse and the numpy-namespace array
#: backend are lossless, so zero flip-risk events are expected
#: throughout).
SESSION_CALLS = {
    "trivial": ("trivial", {}),
    "first_fit": ("first_fit", {}),
    "first_fit_free_power": ("first_fit_free_power", {}),
    "peeling": ("peeling", {}),
    "gain_scaling": ("gain_scaling", {}),  # gamma_target added per instance
    "sqrt_coloring": ("sqrt_coloring", {}),
    "sqrt_coloring_no_lp": ("sqrt_coloring", {"use_lp": False}),
    "local_search": ("local_search", {}),  # schedule= added per run
    "distributed": ("distributed", {}),
    "exact": ("exact", {}),
    "protocol_model": ("protocol_model", {}),
}


@pytest.mark.parametrize("backend", ["dense", "sparse", "array"])
@pytest.mark.parametrize("scheduler_name", sorted(SESSION_CALLS))
@pytest.mark.parametrize(
    "instance_name",
    sorted(
        name
        for name in GRID
        if name.endswith(("n8", "n32")) or "shared-node" in name
    ),
)
def test_session_matches_legacy_free_functions(
    backend, instance_name, scheduler_name
):
    """Acceptance: every scheduler resolved through the registry and
    called via Session.schedule emits the very schedule the legacy free
    function emits — on the dense, the (lossless) sparse, and the
    array-API (numpy namespace) backend — with zero flip-risk
    events."""
    from repro.api import Problem

    instance = GRID[instance_name]
    if scheduler_name == "exact" and instance.n > MAX_EXACT_N:
        pytest.skip(f"exact solver caps at n={MAX_EXACT_N}")
    legacy = SCHEDULERS[scheduler_name](instance, np.random.default_rng(99))

    clear_context_cache()
    algorithm, params = SESSION_CALLS[scheduler_name]
    params = dict(params)
    session = Problem(instance, backend=backend).session()
    rng = None
    if scheduler_name in ("sqrt_coloring", "sqrt_coloring_no_lp", "distributed"):
        rng = np.random.default_rng(99)
    if scheduler_name == "gain_scaling":
        params["gamma_target"] = 2.0 * instance.beta
    if scheduler_name == "local_search":
        params["schedule"] = session.schedule("first_fit")
    result = session.schedule(algorithm, rng=rng, **params)

    np.testing.assert_array_equal(
        result.colors,
        legacy.colors,
        err_msg=(
            f"{scheduler_name} via Session on {backend} differs from the "
            f"legacy free function on {instance_name}"
        ),
    )
    np.testing.assert_array_equal(result.powers, legacy.powers)
    assert result.provenance.flip_risk_events == 0
    assert result.provenance.backend == backend
    clear_context_cache()


@pytest.mark.parametrize(
    "direction", [Direction.DIRECTED, Direction.BIDIRECTIONAL]
)
def test_shared_node_pairs_never_share_colors(engine_mode, direction):
    """On the shared-node chain, adjacent requests have infinite mutual
    gain; every scheduler must keep them in distinct colors."""
    instance = _shared_node_instance(direction)
    rng = np.random.default_rng(5)
    for name, scheduler in sorted(SCHEDULERS.items()):
        schedule = scheduler(instance, rng)
        colors = schedule.colors
        for i, j in ((0, 1), (1, 2), (2, 3)):
            assert colors[i] != colors[j], (
                f"{name} put shared-node requests {i}, {j} in one color"
            )
