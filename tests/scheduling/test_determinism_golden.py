"""Determinism regression: pinned golden schedules.

The golden colorings below were produced by the pre-engine
implementation (before the shared ``InterferenceContext`` refactor) on
two small instances.  ``first_fit_schedule`` and ``sqrt_coloring``
must keep reproducing them bit-for-bit, with the engine on *and* off —
any divergence means the refactor changed scheduling decisions, not
just their cost.
"""

import numpy as np
import pytest

from repro.core.context import clear_context_cache, engine_disabled
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.sqrt_coloring import sqrt_coloring

# Golden outputs pinned from the pre-refactor implementation
# (commit 7ad023e), generated with the exact calls used below.
GOLDEN = {
    "bidir-n12-rng0": {
        "first_fit": [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0],
        "sqrt_coloring": [0, 1, 1, 1, 0, 0, 2, 0, 1, 0, 3, 1],
    },
    "directed-n10-rng1": {
        "first_fit": [0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        "sqrt_coloring": [0, 1, 1, 0, 0, 1, 2, 3, 0, 0],
    },
}


def _instances():
    return {
        "bidir-n12-rng0": random_uniform_instance(12, rng=0),
        "directed-n10-rng1": random_uniform_instance(
            10, rng=1, direction="directed"
        ),
    }


@pytest.fixture(params=["engine", "legacy"])
def engine_mode(request):
    clear_context_cache()
    if request.param == "legacy":
        with engine_disabled():
            yield request.param
    else:
        yield request.param
    clear_context_cache()


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_first_fit_matches_golden(engine_mode, name):
    instance = _instances()[name]
    powers = SquareRootPower()(instance)
    schedule = first_fit_schedule(instance, powers)
    assert schedule.colors.tolist() == GOLDEN[name]["first_fit"], (
        f"first_fit diverged from the pre-refactor golden on {name} "
        f"({engine_mode} path)"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_sqrt_coloring_matches_golden(engine_mode, name):
    instance = _instances()[name]
    schedule, _ = sqrt_coloring(instance, rng=42)
    assert schedule.colors.tolist() == GOLDEN[name]["sqrt_coloring"], (
        f"sqrt_coloring diverged from the pre-refactor golden on {name} "
        f"({engine_mode} path)"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_identical_seeds_identical_schedules(engine_mode, name):
    """Same seed twice -> bitwise-identical output (no hidden state)."""
    instance = _instances()[name]
    first, _ = sqrt_coloring(instance, rng=7)
    second, _ = sqrt_coloring(instance, rng=7)
    np.testing.assert_array_equal(first.colors, second.colors)
    np.testing.assert_array_equal(first.powers, second.powers)
