"""Argument-validation helpers shared across the library.

Each helper raises ``ValueError``/``IndexError`` with a message naming
the offending argument, keeping call sites one line long.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

Number = Union[int, float, np.integer, np.floating]


def check_positive(value: Number, name: str) -> float:
    """Return ``float(value)``; raise if it is not strictly positive."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_finite(value: Number, name: str) -> float:
    """Return ``float(value)``; raise if it is NaN or infinite."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value


def check_probability(value: Number, name: str) -> float:
    """Return ``float(value)``; raise unless ``0 <= value <= 1``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_index(index: int, size: int, name: str) -> int:
    """Return ``int(index)``; raise unless ``0 <= index < size``."""
    index = int(index)
    if not 0 <= index < size:
        raise IndexError(f"{name} must be in [0, {size}), got {index}")
    return index
