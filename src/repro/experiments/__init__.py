"""Experiment harness: one module per paper claim.

Each ``run_*`` function is deterministic given a seed, returns a
:class:`repro.util.tables.Table`, and is shared by the benchmark suite
(``benchmarks/bench_eXX_*.py``) and the examples.  The experiment ids
(E1 .. E10) are defined in DESIGN.md and recorded in EXPERIMENTS.md.
"""

from repro.experiments.e01_directed_lower_bound import run_directed_lower_bound
from repro.experiments.e02_nested_intuition import run_nested_intuition
from repro.experiments.e03_sqrt_universal import (
    run_sqrt_universal,
    run_theorem2_literal,
)
from repro.experiments.e04_coloring_algorithm import run_coloring_algorithm
from repro.experiments.e05_gain_scaling import run_gain_scaling
from repro.experiments.e06_star_analysis import run_star_analysis
from repro.experiments.e07_tree_embedding import run_tree_embedding
from repro.experiments.e08_directed_vs_bidirectional import (
    run_directed_vs_bidirectional,
)
from repro.experiments.e09_energy_tradeoff import run_energy_tradeoff
from repro.experiments.e10_iin_measure import run_iin_measure
from repro.experiments.e11_distributed import run_distributed
from repro.experiments.e12_connectivity import run_connectivity
from repro.experiments.e13_exact_certification import run_exact_certification
from repro.experiments.theorem2 import Theorem2RoundStats, sqrt_existence_pipeline

__all__ = [
    "run_directed_lower_bound",
    "run_nested_intuition",
    "run_sqrt_universal",
    "run_theorem2_literal",
    "run_coloring_algorithm",
    "run_gain_scaling",
    "run_star_analysis",
    "run_tree_embedding",
    "run_directed_vs_bidirectional",
    "run_energy_tradeoff",
    "run_iin_measure",
    "run_distributed",
    "run_connectivity",
    "run_exact_certification",
    "sqrt_existence_pipeline",
    "Theorem2RoundStats",
]
