"""Machine-readable benchmark artifacts (``BENCH_<experiment>.json``).

Every orchestrator run can persist, per experiment, one JSON artifact
holding the merged result table, per-shard timings/seeds/sizes and the
summary quality metrics.  CI uploads these files as workflow artifacts
so the performance trajectory of the repo is diffable run over run
instead of being asserted in prose.

Schema (``format_version`` 1)::

    {
      "format_version": 1,
      "kind": "bench",
      "experiment": "e3",
      "title": "Theorem 2 universality",
      "mode": "fast" | "full" (or a benchmark-defined label, e.g. "smoke"),
      "table": {<repro.serialization table payload>},
      "shards": [
        {"key": "n=10", "seed": 123..., "rows": 3, "seconds": 0.41},
        ...
      ],
      "timings": {"run_wall_seconds": 1.3, "total_shard_seconds": 2.2},
      "metrics": {"rows": 9, "ratio_mean": 1.4, ...},
      "env": {"jobs": 4, "backend": "dense", "algorithms": ["first_fit"]}
    }

``env.backend`` names the gain backend the experiment ran on
(``"dense"``/``"sparse"``, see :mod:`repro.core.gains`); artifacts
written before the backend split are read back as ``"dense"``.
``env.algorithms`` lists the registry algorithms the experiment
declares (:attr:`repro.runner.spec.ExperimentSpec.algorithms`); older
artifacts read back with an empty tuple.

``run_wall_seconds`` is the wall time from the start of the
orchestrator run until this experiment's results were complete (the
orchestrator reports experiments as they finish);
``total_shard_seconds`` sums this experiment's own shard times and is
the per-experiment number to diff run over run.  Everything outside
``timings``/``env`` (and the per-shard ``seconds``) is deterministic
for a given spec and mode; comparing the ``table`` sections of two
artifacts is the supported way to assert result identity across worker
counts.  Artifacts are strict JSON: non-finite table cells are encoded
as ``{"$float": "Infinity" | "-Infinity" | "NaN"}`` wrappers (see
:mod:`repro.serialization`).
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.serialization import (
    FORMAT_VERSION,
    SerializationError,
    table_from_dict,
    table_to_dict,
)
from repro.util.tables import Table


@dataclass
class ShardResult:
    """Outcome of one executed shard."""

    key: str
    seed: Optional[int]
    rows: int
    seconds: float


@dataclass
class BenchReport:
    """In-memory form of one ``BENCH_*.json`` artifact."""

    experiment: str
    title: str
    mode: str
    table: Table
    shards: List[ShardResult] = field(default_factory=list)
    run_wall_seconds: float = 0.0
    jobs: int = 1
    metric: Optional[str] = None
    backend: str = "dense"
    #: Registry algorithm names the experiment declares it exercises
    #: (see :attr:`repro.runner.spec.ExperimentSpec.algorithms`).
    algorithms: Tuple[str, ...] = ()

    @property
    def total_shard_seconds(self) -> float:
        return float(sum(shard.seconds for shard in self.shards))

    def metrics(self) -> Dict[str, Union[int, float]]:
        """Summary metrics: row count plus metric mean/min/max."""
        summary: Dict[str, Union[int, float]] = {"rows": len(self.table)}
        if self.metric is None or self.metric not in self.table.columns:
            return summary
        values = [
            float(v)
            for v in self.table.column(self.metric)
            if isinstance(v, (int, float)) and math.isfinite(float(v))
        ]
        if values:
            summary[f"{self.metric}_mean"] = sum(values) / len(values)
            summary[f"{self.metric}_min"] = min(values)
            summary[f"{self.metric}_max"] = max(values)
        return summary


def bench_to_dict(report: BenchReport) -> Dict[str, Any]:
    """Serializable dictionary for *report* (schema above)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "bench",
        "experiment": report.experiment,
        "title": report.title,
        "mode": report.mode,
        "metric_column": report.metric,
        "table": table_to_dict(report.table),
        "shards": [
            {
                "key": shard.key,
                "seed": shard.seed,
                "rows": shard.rows,
                "seconds": shard.seconds,
            }
            for shard in report.shards
        ],
        "timings": {
            "run_wall_seconds": report.run_wall_seconds,
            "total_shard_seconds": report.total_shard_seconds,
        },
        "metrics": report.metrics(),
        "env": {
            "jobs": report.jobs,
            "backend": report.backend,
            "algorithms": list(report.algorithms),
        },
    }


def bench_from_dict(payload: Dict[str, Any]) -> BenchReport:
    """Rebuild a :class:`BenchReport` from :func:`bench_to_dict` output."""
    if payload.get("kind") != "bench":
        raise SerializationError("payload is not a bench artifact")
    if payload.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    report = BenchReport(
        experiment=payload["experiment"],
        title=payload["title"],
        mode=payload["mode"],
        table=table_from_dict(payload["table"]),
        shards=[
            ShardResult(
                key=shard["key"],
                seed=shard["seed"],
                rows=shard["rows"],
                seconds=shard["seconds"],
            )
            for shard in payload.get("shards", [])
        ],
        run_wall_seconds=payload.get("timings", {}).get(
            "run_wall_seconds", 0.0
        ),
        jobs=payload.get("env", {}).get("jobs", 1),
        metric=payload.get("metric_column"),
        backend=payload.get("env", {}).get("backend", "dense"),
        algorithms=tuple(payload.get("env", {}).get("algorithms", ())),
    )
    return report


def artifact_path(directory: Union[str, pathlib.Path], experiment: str) -> pathlib.Path:
    """``<directory>/BENCH_<experiment>.json``."""
    return pathlib.Path(directory) / f"BENCH_{experiment}.json"


def write_artifact(
    directory: Union[str, pathlib.Path], report: BenchReport
) -> pathlib.Path:
    """Write *report* under *directory* (created if missing)."""
    path = artifact_path(directory, report.experiment)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(bench_to_dict(report), indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return path


def read_artifact(path: Union[str, pathlib.Path]) -> BenchReport:
    """Load one ``BENCH_*.json`` artifact."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return bench_from_dict(payload)
