"""Bounded-queue asyncio front-end over live scheduling sessions.

Architecture
------------
One :class:`ScheduleServer` owns any number of named sessions.  Each
session gets

* a bounded :class:`asyncio.Queue` of pending arrivals,
* a single worker task that drains the queue and admits each arrival
  through the session's live kernel (``Session.add_requests`` → one
  O(n) vectorized admission, no context rebuild),
* admission control: arrivals are rejected up front when the session
  is at its ``max_requests`` cap, and — under the ``"shed"`` overflow
  policy — when the queue is full.

Under the default ``"wait"`` policy a full queue instead blocks the
producer inside :meth:`ScheduleServer.submit` (backpressure).  All
session state is touched only from the event loop thread, so no locks
are needed: the worker serializes arrivals per session, and departures
run inline between queue items.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api import Problem, RequestHandle, Session

__all__ = [
    "AdmissionDecision",
    "ScheduleServer",
    "ServeConfig",
    "SessionStats",
]


@dataclass(frozen=True)
class ServeConfig:
    """Per-session queueing and admission-control knobs.

    Parameters
    ----------
    queue_capacity:
        Bound on the arrival queue.  With ``overflow="wait"`` a full
        queue blocks producers in :meth:`ScheduleServer.submit`; with
        ``overflow="shed"`` the arrival is rejected immediately.
    max_requests:
        Cap on the session's *active* request count.  Arrivals that
        would exceed it are rejected with reason ``"capacity"``.
        ``None`` means unbounded.
    overflow:
        ``"wait"`` (backpressure, the default) or ``"shed"``.
    on_admit:
        Optional async consumer invoked by the worker after every
        decision.  A slow consumer slows the worker, which fills the
        queue and propagates backpressure to producers.
    """

    queue_capacity: int = 64
    max_requests: Optional[int] = None
    overflow: str = "wait"
    on_admit: Optional[Callable[["AdmissionDecision"], Awaitable[None]]] = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError("max_requests must be >= 1 or None")
        if self.overflow not in ("wait", "shed"):
            raise ValueError(
                f"overflow must be 'wait' or 'shed', got {self.overflow!r}"
            )


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one submitted arrival.

    ``accepted`` arrivals carry the stable :class:`RequestHandle` and
    the color class the live kernel admitted them into.  Rejected
    arrivals carry ``reason`` (``"capacity"``, ``"queue_full"``, or
    ``"closed"``) and a handle/color of ``None``/``-1``.  ``latency_s``
    is wall time from submit to decision, queue wait included.
    """

    session: str
    handle: Optional[RequestHandle]
    color: int
    accepted: bool
    reason: Optional[str]
    latency_s: float


@dataclass
class SessionStats:
    """Running counters for one served session."""

    submitted: int = 0
    admitted: int = 0
    rejected_capacity: int = 0
    rejected_queue: int = 0
    departures: int = 0
    latencies_s: List[float] = field(default_factory=list)
    first_submit: Optional[float] = None
    last_decision: Optional[float] = None

    def snapshot(self) -> Dict[str, Any]:
        lat = np.asarray(self.latencies_s, dtype=np.float64)
        elapsed = (
            self.last_decision - self.first_submit
            if self.first_submit is not None
            and self.last_decision is not None
            and self.last_decision > self.first_submit
            else None
        )
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected_capacity": self.rejected_capacity,
            "rejected_queue": self.rejected_queue,
            "departures": self.departures,
            "arrivals_per_sec": (
                self.admitted / elapsed if elapsed else None
            ),
            "mean_latency_s": float(lat.mean()) if lat.size else None,
            "p50_latency_s": float(np.percentile(lat, 50)) if lat.size else None,
            "p99_latency_s": float(np.percentile(lat, 99)) if lat.size else None,
        }


@dataclass
class _Arrival:
    pair: Tuple[int, int]
    power: Optional[float]
    future: "asyncio.Future[AdmissionDecision]"
    submitted_at: float


class _Served:
    """One session plus its queue, worker, and counters."""

    def __init__(self, name: str, session: Session, config: ServeConfig):
        self.name = name
        self.session = session
        self.config = config
        self.queue: "asyncio.Queue[_Arrival]" = asyncio.Queue(
            maxsize=config.queue_capacity
        )
        self.worker: Optional[asyncio.Task] = None
        self.stats = SessionStats()


class ScheduleServer:
    """Multiplex live sessions behind bounded arrival queues.

    Use as an async context manager (or call :meth:`aclose` yourself)::

        async with ScheduleServer() as server:
            server.add_session("cell-a", Problem(instance))
            decision = await server.submit("cell-a", (sender, receiver))

    All methods must be called from the owning event loop.
    """

    def __init__(self, default_config: Optional[ServeConfig] = None):
        self._default_config = default_config or ServeConfig()
        self._served: Dict[str, _Served] = {}
        self._closed = False

    # -- session lifecycle -------------------------------------------------

    def add_session(
        self,
        name: str,
        problem: Union[Problem, Session],
        config: Optional[ServeConfig] = None,
    ) -> Session:
        """Register *problem* under *name* and start its worker."""
        if self._closed:
            raise RuntimeError("server is closed")
        if name in self._served:
            raise ValueError(f"session {name!r} already registered")
        session = (
            problem if isinstance(problem, Session) else problem.session()
        )
        served = _Served(name, session, config or self._default_config)
        served.worker = asyncio.get_running_loop().create_task(
            self._drain_queue(served), name=f"repro-serve-{name}"
        )
        self._served[name] = served
        return session

    def session(self, name: str) -> Session:
        return self._lookup(name).session

    def sessions(self) -> List[str]:
        return list(self._served)

    def _lookup(self, name: str) -> _Served:
        try:
            return self._served[name]
        except KeyError:
            raise KeyError(f"no session named {name!r}") from None

    # -- arrivals ----------------------------------------------------------

    async def submit(
        self,
        name: str,
        pair: Tuple[int, int],
        power: Optional[float] = None,
    ) -> AdmissionDecision:
        """Submit one arrival and await its admission decision.

        Applies admission control up front (n-cap, then queue policy),
        then parks the arrival on the session's bounded queue.  Under
        ``overflow="wait"`` a full queue suspends this coroutine until
        the worker frees a slot — that suspension *is* the
        backpressure signal to the producer.
        """
        served = self._lookup(name)
        now = time.perf_counter()
        served.stats.submitted += 1
        if served.stats.first_submit is None:
            served.stats.first_submit = now

        if self._closed:
            return self._reject(served, "closed", now)
        if self._at_capacity(served):
            served.stats.rejected_capacity += 1
            return self._reject(served, "capacity", now)

        arrival = _Arrival(
            pair=(int(pair[0]), int(pair[1])),
            power=None if power is None else float(power),
            future=asyncio.get_running_loop().create_future(),
            submitted_at=now,
        )
        if served.config.overflow == "shed":
            try:
                served.queue.put_nowait(arrival)
            except asyncio.QueueFull:
                served.stats.rejected_queue += 1
                return self._reject(served, "queue_full", now)
        else:
            await served.queue.put(arrival)
        return await arrival.future

    def remove(
        self, name: str, handles: Union[RequestHandle, int, list]
    ) -> None:
        """Depart *handles* from the named session, exactly, in place."""
        served = self._lookup(name)
        if not isinstance(handles, list):
            handles = [handles]
        served.session.remove_requests(handles)
        served.stats.departures += len(handles)

    def _at_capacity(self, served: _Served) -> bool:
        cap = served.config.max_requests
        if cap is None:
            return False
        # Queued-but-unadmitted arrivals count against the cap so a
        # burst cannot overshoot it while the worker catches up.
        return served.session.active_requests + served.queue.qsize() >= cap

    def _reject(
        self, served: _Served, reason: str, submitted_at: float
    ) -> AdmissionDecision:
        now = time.perf_counter()
        served.stats.last_decision = now
        return AdmissionDecision(
            session=served.name,
            handle=None,
            color=-1,
            accepted=False,
            reason=reason,
            latency_s=now - submitted_at,
        )

    # -- worker ------------------------------------------------------------

    async def _drain_queue(self, served: _Served) -> None:
        while True:
            arrival = await served.queue.get()
            try:
                decision = self._admit(served, arrival)
                if not arrival.future.done():
                    arrival.future.set_result(decision)
                if served.config.on_admit is not None:
                    await served.config.on_admit(decision)
            except Exception as exc:  # surface to the producer, keep serving
                if not arrival.future.done():
                    arrival.future.set_exception(exc)
            finally:
                served.queue.task_done()

    def _admit(self, served: _Served, arrival: _Arrival) -> AdmissionDecision:
        session = served.session
        cap = served.config.max_requests
        if cap is not None and session.active_requests >= cap:
            served.stats.rejected_capacity += 1
            return self._reject(served, "capacity", arrival.submitted_at)
        session.ensure_live()
        powers = None if arrival.power is None else [arrival.power]
        handle = session.add_requests([arrival.pair], powers=powers)[0]
        color = session.color_of(handle)
        now = time.perf_counter()
        served.stats.admitted += 1
        served.stats.latencies_s.append(now - arrival.submitted_at)
        served.stats.last_decision = now
        return AdmissionDecision(
            session=served.name,
            handle=handle,
            color=color,
            accepted=True,
            reason=None,
            latency_s=now - arrival.submitted_at,
        )

    # -- introspection -----------------------------------------------------

    def stats(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Counters and latency percentiles, per session or for all."""
        if name is not None:
            return self._lookup(name).stats.snapshot()
        return {n: s.stats.snapshot() for n, s in self._served.items()}

    def pending(self, name: str) -> int:
        return self._lookup(name).queue.qsize()

    # -- shutdown ----------------------------------------------------------

    async def drain(self, name: Optional[str] = None) -> None:
        """Wait until the named queue (or every queue) is fully admitted."""
        targets = (
            [self._lookup(name)] if name is not None
            else list(self._served.values())
        )
        await asyncio.gather(*(s.queue.join() for s in targets))

    async def aclose(self) -> None:
        """Drain every queue, then stop the workers.

        New ``submit`` calls are rejected with reason ``"closed"``
        as soon as this starts; arrivals already queued are still
        admitted before the workers stop.
        """
        if self._closed:
            return
        self._closed = True
        await self.drain()
        for served in self._served.values():
            if served.worker is not None:
                served.worker.cancel()
        for served in self._served.values():
            if served.worker is not None:
                try:
                    await served.worker
                except asyncio.CancelledError:
                    pass

    async def __aenter__(self) -> "ScheduleServer":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()
