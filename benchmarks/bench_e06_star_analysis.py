"""E6 — regenerate the Lemma 5 star-analysis table."""

from repro.experiments import run_star_analysis


def test_e06_star_analysis(benchmark, save_table):
    table = benchmark.pedantic(
        run_star_analysis,
        kwargs=dict(m=60, trials=3, rng=11),
        rounds=1,
        iterations=1,
    )
    save_table("e06_star_analysis", table)
    for row in table.rows:
        assert row["fraction_kept"] >= row["envelope"] - 0.2
