"""Tests for the CLI runner and the E11/E12 extension experiments."""

import json

import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments import run_connectivity, run_distributed


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in ("e1", "e10", "e3b", "e11", "e12", "e13"):
            assert key in out

    def test_fast_single_experiment(self, capsys):
        assert cli_main(["e2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "nested" in out

    def test_unknown_id_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["e99"])

    def test_bad_jobs_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["e2", "--jobs", "0"])

    def test_jobs_and_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert cli_main(
            ["e2", "e10", "--fast", "--jobs", "2", "--artifacts", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "nested" in out
        for experiment in ("e2", "e10"):
            payload = json.loads(
                (out_dir / f"BENCH_{experiment}.json").read_text()
            )
            assert payload["kind"] == "bench"
            assert payload["experiment"] == experiment
            assert payload["env"]["jobs"] == 2
            assert payload["table"]["rows"]


class TestE11Distributed:
    @pytest.fixture(scope="class")
    def table(self):
        return run_distributed(n_values=(8,), trials=2, rng=13)

    def test_protocol_completes_feasibly(self, table):
        # The run itself validates every schedule; check bookkeeping.
        for row in table.rows:
            assert row["distributed_colors"] >= row["centralized_colors"] - 1e-9
            assert row["protocol_slots"] >= row["distributed_colors"]

    def test_overhead_reported(self, table):
        for row in table.rows:
            assert row["distributed_overhead"] >= 1.0


class TestE12Connectivity:
    @pytest.fixture(scope="class")
    def table(self):
        return run_connectivity(n_values=(8, 16), trials=1, rng=14)

    def test_chain_separation(self, table):
        rows = [r for r in table.rows if r["placement"] == "exp-chain"]
        # Uniform/linear grow with n; sqrt and free powers stay flat.
        assert rows[-1]["uniform"] > rows[0]["uniform"]
        assert rows[-1]["sqrt"] <= 3
        assert rows[-1]["free_power"] <= 3

    def test_free_power_never_worse(self, table):
        for row in table.rows:
            assert row["free_power"] <= row["uniform"]
            assert row["free_power"] <= row["linear"]
            assert row["free_power"] <= row["sqrt"]
