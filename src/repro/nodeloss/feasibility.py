"""Feasibility predicates for the node-loss problem.

Mirrors :mod:`repro.core.feasibility` for node-loss instances, plus
:func:`max_feasible_gain`: the largest gain ``gamma'`` for which *some*
power assignment makes a node set ``gamma'``-feasible.  The node-loss
constraint map is linear, so this is exactly ``1 / rho(M)`` with
``M[i, j] = l_i / l(i, j)`` (Perron-Frobenius), giving the witness gain
used throughout the Lemma 5 experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nodeloss.instance import NodeLossInstance


def _pairwise_gain(instance: NodeLossInstance, powers: np.ndarray) -> np.ndarray:
    """Matrix ``G[i, j] = p_j / l(i, j)`` with zero diagonal."""
    loss = instance.loss_matrix()
    powers = np.asarray(powers, dtype=float)
    gains = np.full_like(loss, np.inf)
    np.divide(powers[None, :], loss, out=gains, where=loss > 0)
    np.fill_diagonal(gains, 0.0)
    return gains


def nodeloss_interference(
    instance: NodeLossInstance,
    powers: np.ndarray,
    subset: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Interference ``I_p(i | U)`` at each node of *subset* (all nodes
    if ``None``), counting only nodes of the subset."""
    if subset is not None:
        sub = instance.subset(subset)
        sub_powers = np.asarray(powers, dtype=float)[np.asarray(subset, dtype=int)]
        return nodeloss_interference(sub, sub_powers)
    return _pairwise_gain(instance, powers).sum(axis=1)


def nodeloss_margins(
    instance: NodeLossInstance,
    powers: np.ndarray,
    subset: Optional[Sequence[int]] = None,
    gamma: Optional[float] = None,
) -> np.ndarray:
    """Margins ``(p_i / l_i) / (gamma * I_p(i | U))`` (inf if no
    interference)."""
    gamma = instance.beta if gamma is None else float(gamma)
    if not gamma > 0:
        raise ValueError(f"gamma must be > 0, got {gamma}")
    powers_arr = np.asarray(powers, dtype=float)
    if subset is not None:
        idx = np.asarray(subset, dtype=int)
        signals = powers_arr[idx] / instance.losses[idx]
    else:
        signals = powers_arr / instance.losses
    interf = nodeloss_interference(instance, powers_arr, subset)
    margins = np.full(signals.shape, np.inf)
    np.divide(signals, gamma * interf, out=margins, where=interf > 0)
    margins[np.isinf(interf)] = 0.0
    return margins


def is_gamma_feasible(
    instance: NodeLossInstance,
    powers: np.ndarray,
    subset: Optional[Sequence[int]] = None,
    gamma: Optional[float] = None,
    rtol: float = 1e-9,
) -> bool:
    """Is *subset* gamma-feasible under *powers* (definition in §3.2)?"""
    margins = nodeloss_margins(instance, powers, subset, gamma)
    return bool(np.all(margins >= 1.0 - rtol))


def max_feasible_gain(
    instance: NodeLossInstance,
    subset: Optional[Sequence[int]] = None,
) -> float:
    """Largest gain for which *some* power assignment works.

    The constraints ``p_i / l_i > gamma * sum_j p_j / l(i, j)`` admit a
    positive solution iff ``gamma * rho(M) < 1`` for
    ``M[i, j] = l_i / l(i, j)``, so the supremum gain is ``1 / rho(M)``
    (``inf`` when the nodes do not interact at all, ``0`` when two
    nodes coincide).
    """
    if subset is None:
        idx = np.arange(instance.m)
    else:
        idx = np.asarray(subset, dtype=int)
    if idx.size <= 1:
        return float("inf")
    loss = instance.loss_matrix()[np.ix_(idx, idx)]
    l_own = instance.losses[idx]
    with np.errstate(divide="ignore"):
        matrix = np.where(loss > 0, l_own[:, None] / loss, np.inf)
    np.fill_diagonal(matrix, 0.0)
    if np.any(np.isinf(matrix)):
        return 0.0
    eigenvalues = np.linalg.eigvals(matrix)
    rho = float(np.max(np.abs(eigenvalues)))
    if rho == 0.0:
        return float("inf")
    return 1.0 / rho


def witness_powers(
    instance: NodeLossInstance,
    gamma: float,
    subset: Optional[Sequence[int]] = None,
    iterations: int = 10_000,
    tol: float = 1e-12,
) -> np.ndarray:
    """A power vector making *subset* gamma-feasible, if one exists.

    Fixed point of ``p = gamma * M p + l`` (monotone iteration), which
    converges exactly when ``gamma < max_feasible_gain``.

    Raises
    ------
    ValueError
        If ``gamma`` is not achievable for the subset.
    """
    if subset is None:
        idx = np.arange(instance.m)
    else:
        idx = np.asarray(subset, dtype=int)
    best = max_feasible_gain(instance, idx)
    if not gamma < best:
        raise ValueError(
            f"gamma={gamma:g} is not achievable (max feasible gain {best:g})"
        )
    loss = instance.loss_matrix()[np.ix_(idx, idx)]
    l_own = instance.losses[idx]
    with np.errstate(divide="ignore"):
        matrix = np.where(loss > 0, l_own[:, None] / loss, 0.0)
    np.fill_diagonal(matrix, 0.0)
    p = l_own.astype(float).copy()
    for _ in range(iterations):
        new_p = gamma * (matrix @ p) + l_own
        if np.max(np.abs(new_p - p)) <= tol * np.max(new_p):
            p = new_p
            break
        p = new_p
    return p
