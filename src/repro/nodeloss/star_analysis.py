"""Constructive Lemma 5 machinery (Section 4).

Lemma 5: if a star node-loss instance is ``gamma'``-feasible under
*some* power assignment, then a ``(1 - O((gamma/gamma')^{2/3}))``
fraction of its nodes is ``gamma``-feasible under the square-root
assignment.

The paper's proof is an explicit selection procedure; this module
implements it end to end so the retained fraction can be *measured*:

1. **Case split** (§4.4) — nodes with large loss-to-decay ratio
   ``a_i = l_i / d_i > 2^(alpha+1) / gamma'`` form the set ``L``; their
   losses are hypothetically reduced so every node looks small.
2. **Decay classes** (§4.3) — nodes are bucketed by powers of two of
   their decay ``d_i = delta_i**alpha``.
3. **Claim 12 trim** — within each class, nodes whose loss parameter
   exceeds ``2^(alpha+j+2) / (eps * gamma' * k_j)`` are dropped (at
   most an ``eps`` fraction when the witness assumption holds).
4. **Interference selection** — remaining nodes keep their place iff
   their measured square-root-assignment interference is at most the
   target threshold; removals only help survivors, so one pass
   suffices.
5. **Window trick** (§4.4) — a large-loss node is dropped when its
   neighbouring small-loss blocks ``S_i, S_succ(i)`` are too populous
   (more than ``gamma' / gamma''`` nodes).
6. **Final guarantee** — actual margins under the original losses are
   verified and any stragglers dropped, so the returned subset is
   *certified* gamma-feasible under the square-root assignment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nodeloss.feasibility import (
    max_feasible_gain,
    nodeloss_margins,
)
from repro.nodeloss.instance import StarNodeLoss


def large_loss_threshold(alpha: float, gamma_prime: float) -> float:
    """The §4 boundary ``2^(alpha+1) / gamma'`` between small and large
    loss-to-decay ratios."""
    if not gamma_prime > 0:
        raise ValueError(f"gamma_prime must be > 0, got {gamma_prime}")
    return 2.0 ** (alpha + 1) / gamma_prime


def split_large_small(
    star: StarNodeLoss, gamma_prime: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices of large-loss (``L``) and small-loss nodes (§4.4)."""
    threshold = large_loss_threshold(star.alpha, gamma_prime)
    ratios = star.loss_to_decay
    large = np.flatnonzero(ratios > threshold)
    small = np.flatnonzero(ratios <= threshold)
    return large, small


def decay_classes(star: StarNodeLoss) -> Dict[int, np.ndarray]:
    """Bucket nodes by decay: class ``j`` holds ``2^(j-1) < d/d_min <= 2^j``.

    Decays are normalised by the smallest decay so the class indices
    start at 0 (the paper's "w.l.o.g. assume d_u > 1").
    """
    decay = star.decay
    d_min = float(np.min(decay))
    normalised = decay / d_min
    # Class of a node: smallest j with normalised decay <= 2^j.
    with np.errstate(divide="ignore"):
        j = np.ceil(np.log2(np.maximum(normalised, 1.0) * (1 + 1e-12))).astype(int)
    classes: Dict[int, np.ndarray] = {}
    for cls in np.unique(j):
        classes[int(cls)] = np.flatnonzero(j == cls)
    return classes


def _sqrt_interference(star: StarNodeLoss, members: np.ndarray) -> np.ndarray:
    """Square-root-assignment interference among *members* (aligned to
    members)."""
    if members.size == 0:
        return np.zeros(0)
    powers = star.sqrt_powers()
    loss = star.loss_matrix()[np.ix_(members, members)]
    gains = np.full_like(loss, np.inf)
    np.divide(powers[members][None, :], loss, out=gains, where=loss > 0)
    np.fill_diagonal(gains, 0.0)
    return gains.sum(axis=1)


def claim12_trim(
    star: StarNodeLoss,
    members: np.ndarray,
    gamma_prime: float,
    eps: float,
    losses: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The Claim 12 trim: drop per-class loss outliers.

    Within decay class ``D_j`` (cap ``c_j`` on raw decay, ``k_j``
    members), nodes whose loss parameter exceeds
    ``2^(alpha+2) * c_j / (eps * gamma' * k_j)`` are dropped.  Claim 12
    shows at most an ``eps`` fraction per class violates the bound when
    a ``gamma'`` witness power assignment exists.
    """
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    losses = star.losses if losses is None else np.asarray(losses, dtype=float)
    decay = star.decay
    member_set = set(int(i) for i in members)
    kept: List[int] = []
    classes = decay_classes(star)
    for indices in classes.values():
        present = [int(i) for i in indices if int(i) in member_set]
        if not present:
            continue
        k_j = len(present)
        cap = float(np.max(decay[present]))
        bound = 2.0 ** (star.alpha + 2) * cap / (eps * gamma_prime * k_j)
        kept.extend(i for i in present if losses[i] <= bound)
    return np.asarray(sorted(kept), dtype=int)


def small_loss_subset(
    star: StarNodeLoss,
    gamma: float,
    gamma_prime: Optional[float] = None,
    eps: Optional[float] = None,
    losses: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Lemma 11 made constructive: a gamma-feasible subset under the
    square-root assignment for stars with small loss parameters.

    Parameters
    ----------
    gamma:
        Target gain for the square-root assignment.
    gamma_prime:
        Witness gain (defaults to the star's best achievable gain).
    eps:
        Per-class trim fraction; the paper's optimum
        ``(gamma/gamma')^{2/3}`` by default.
    losses:
        Loss parameters to analyse (defaults to the star's; Lemma 5
        passes hypothetically reduced ones).
    """
    if gamma_prime is None:
        gamma_prime = max_feasible_gain(star)
    if not 0 < gamma:
        raise ValueError(f"gamma must be > 0, got {gamma}")
    if eps is None:
        ratio = min(1.0, gamma / gamma_prime) if math.isfinite(gamma_prime) else 0.0
        eps = max(1e-6, min(0.5, ratio ** (2.0 / 3.0)))
    losses_arr = star.losses if losses is None else np.asarray(losses, dtype=float)
    members = np.arange(star.m)
    members = claim12_trim(star, members, gamma_prime, eps, losses=losses_arr)
    if members.size == 0:
        return members
    # Interference selection under the square-root assignment of the
    # analysed losses.  Signal of node u is 1 / sqrt(l_u); keep u iff
    # gamma * I(u) <= signal.  Dropping violators only lowers the
    # interference of survivors, so one pass is sound.
    powers = np.sqrt(losses_arr)
    loss_pairwise = star.loss_matrix()[np.ix_(members, members)]
    gains = np.full_like(loss_pairwise, np.inf)
    np.divide(powers[members][None, :], loss_pairwise, out=gains, where=loss_pairwise > 0)
    np.fill_diagonal(gains, 0.0)
    interference = gains.sum(axis=1)
    signals = 1.0 / np.sqrt(losses_arr[members])
    ok = gamma * interference <= signals
    return members[ok]


@dataclass
class Lemma5Result:
    """Outcome of the full Lemma 5 selection.

    Attributes
    ----------
    kept:
        Indices of the certified gamma-feasible subset.
    gamma, gamma_prime:
        Target and witness gains.
    dropped_trim, dropped_selection, dropped_window, dropped_final:
        Node counts removed by each stage (Claim 12 trim, interference
        selection, §4.4 window trick, final certification pass).
    """

    kept: np.ndarray
    gamma: float
    gamma_prime: float
    dropped_trim: int = 0
    dropped_selection: int = 0
    dropped_window: int = 0
    dropped_final: int = 0

    @property
    def fraction_kept(self) -> float:
        """Fraction of the star's nodes retained."""
        total = (
            self.kept.size
            + self.dropped_trim
            + self.dropped_selection
            + self.dropped_window
            + self.dropped_final
        )
        return self.kept.size / total if total else 0.0


def lemma5_subset(
    star: StarNodeLoss,
    gamma: float,
    gamma_prime: Optional[float] = None,
    eps: Optional[float] = None,
) -> Lemma5Result:
    """The full Lemma 5 selection with certification.

    Combines the hypothetical loss reduction, the small-loss routine,
    the large-loss window trick and a final certification pass.  The
    returned subset is guaranteed gamma-feasible for the square-root
    assignment (verified on the star's true losses).
    """
    if gamma_prime is None:
        gamma_prime = max_feasible_gain(star)
    if math.isinf(gamma_prime):
        # No interaction at all: everything is feasible as-is.
        return Lemma5Result(
            kept=np.arange(star.m), gamma=gamma, gamma_prime=gamma_prime
        )
    threshold = large_loss_threshold(star.alpha, gamma_prime)
    reduced_losses = np.minimum(star.losses, star.decay * threshold)

    # Small-loss routine on the hypothetically reduced losses; the
    # paper runs it with an intermediate gain gamma'' >= 2 gamma.
    gamma_double_prime = 2.0 * gamma
    before_trim = star.m
    selected = small_loss_subset(
        star,
        gamma_double_prime,
        gamma_prime=gamma_prime,
        eps=eps,
        losses=reduced_losses,
    )
    trimmed = claim12_trim(
        star,
        np.arange(star.m),
        gamma_prime,
        eps
        if eps is not None
        else max(1e-6, min(0.5, (min(1.0, gamma / gamma_prime)) ** (2.0 / 3.0))),
        losses=reduced_losses,
    )
    dropped_trim = before_trim - trimmed.size
    dropped_selection = trimmed.size - selected.size

    # Window trick: order the selected nodes by decay; for each
    # large-loss node, count the small-loss nodes in its window
    # (between its predecessor in L and its successor in L); drop it if
    # the window holds more than gamma' / gamma'' nodes.
    large, _ = split_large_small(star, gamma_prime)
    large_set = set(int(i) for i in large)
    order = sorted(int(i) for i in selected)
    order.sort(key=lambda i: star.decay[i])
    window_limit = gamma_prime / gamma_double_prime
    keep_after_window: List[int] = []
    dropped_window = 0
    # Positions of large-loss nodes within the decay ordering.
    large_positions = [k for k, i in enumerate(order) if i in large_set]
    windows: Dict[int, int] = {}
    for pos_idx, pos in enumerate(large_positions):
        prev_pos = large_positions[pos_idx - 1] if pos_idx > 0 else -1
        next_pos = (
            large_positions[pos_idx + 1]
            if pos_idx + 1 < len(large_positions)
            else len(order)
        )
        # |S_i| + 1 + |S_succ(i)| = nodes strictly between the
        # neighbouring large nodes, inclusive of i itself.
        windows[pos] = next_pos - prev_pos - 1
    for k, i in enumerate(order):
        if i in large_set and windows.get(k, 0) > window_limit:
            dropped_window += 1
            continue
        keep_after_window.append(i)

    # Certification: verify against the *true* losses, peeling any
    # violators (counts how much slack the proof constants left).
    kept = np.asarray(sorted(keep_after_window), dtype=int)
    dropped_final = 0
    powers = star.sqrt_powers()
    while kept.size > 0:
        margins = nodeloss_margins(star, powers, subset=kept, gamma=gamma)
        if np.all(margins >= 1.0 - 1e-9):
            break
        worst = int(np.argmin(margins))
        kept = np.delete(kept, worst)
        dropped_final += 1

    return Lemma5Result(
        kept=kept,
        gamma=gamma,
        gamma_prime=gamma_prime,
        dropped_trim=dropped_trim,
        dropped_selection=dropped_selection,
        dropped_window=dropped_window,
        dropped_final=dropped_final,
    )
