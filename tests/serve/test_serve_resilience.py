"""Self-healing serve sessions: supervised admission, deadlines,
and shutdown racing recovery.

Acceptance criterion (c): an injected mid-admission fault must leave
the session in a state where the next ``live_result()`` is
bit-identical to a cold rebuild over the same active requests, with the
recovery counted in ``SessionStats.recoveries``.
"""

import asyncio

import numpy as np
import pytest

from repro.api import Problem
from repro.instances import random_uniform_instance
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultSpec, InjectedFault
from repro.serve import ScheduleServer, ServeConfig

PAIRS = [(0, 3), (1, 4), (2, 5), (6, 7), (8, 9)]


def make_problem(n=12, seed=7):
    return Problem(random_uniform_instance(n, rng=np.random.default_rng(seed)))


def grown_fault(at=(1,), kind="raise"):
    """A plan that fires mid-admission, after the instance/context have
    grown but before the arrival is accounted — a genuinely
    half-mutated session."""
    return FaultPlan(
        specs=(
            FaultSpec(
                site="session", phase="add_requests:grown", at=at, kind=kind
            ),
        )
    )


async def cold_colors(pairs):
    """Colors from a fresh server admitting *pairs* with no faults."""
    async with ScheduleServer() as server:
        server.add_session("cold", make_problem())
        for pair in pairs:
            decision = await server.submit("cold", pair)
            assert decision.accepted
        return server.session("cold").live_result().schedule.colors


class TestSupervisedAdmission:
    def test_mid_admission_fault_matches_cold_rebuild(self):
        """Satellite 3: inject a fault mid-admission, then assert every
        subsequent arrival is colored exactly as a cold rebuild."""

        async def scenario():
            async with ScheduleServer() as server:
                server.add_session(
                    "s", make_problem(), ServeConfig(fault_plan=grown_fault())
                )
                outcomes = []
                for pair in PAIRS:
                    try:
                        decision = await server.submit("s", pair)
                        outcomes.append(decision.accepted)
                    except InjectedFault:
                        outcomes.append("fault")
                stats = server.stats("s")
                colors = server.session("s").live_result().schedule.colors
                return outcomes, stats, colors

        outcomes, stats, colors = asyncio.run(scenario())
        assert outcomes == [True, "fault", True, True, True]
        assert stats["recoveries"] == 1
        assert stats["degraded"] is False  # healed by later admissions
        assert stats["broken"] is False
        # The faulted arrival was rolled back entirely: the session
        # matches a cold server that never saw it.
        survivors = [p for i, p in enumerate(PAIRS) if i != 1]
        expected = asyncio.run(cold_colors(survivors))
        assert np.array_equal(colors, expected)

    def test_pre_mutation_fault_rolls_back_via_snapshot(self):
        async def scenario():
            plan = FaultPlan(
                specs=(
                    FaultSpec(
                        site="session", phase="add_requests:pre", at=(1,)
                    ),
                )
            )
            async with ScheduleServer() as server:
                server.add_session(
                    "s", make_problem(), ServeConfig(fault_plan=plan)
                )
                results = []
                for pair in PAIRS:
                    try:
                        results.append((await server.submit("s", pair)).color)
                    except InjectedFault:
                        results.append(None)
                return results, server.stats("s"), (
                    server.session("s").live_result().schedule.colors
                )

        results, stats, colors = asyncio.run(scenario())
        assert results[1] is None
        assert stats["recoveries"] == 1
        survivors = [p for i, p in enumerate(PAIRS) if i != 1]
        assert np.array_equal(colors, asyncio.run(cold_colors(survivors)))

    def test_admit_retries_reruns_transient_fault(self):
        async def scenario():
            async with ScheduleServer() as server:
                server.add_session(
                    "s",
                    make_problem(),
                    ServeConfig(fault_plan=grown_fault(), admit_retries=1),
                )
                for pair in PAIRS:
                    decision = await server.submit("s", pair)
                    assert decision.accepted
                return server.stats("s"), (
                    server.session("s").live_result().schedule.colors
                )

        stats, colors = asyncio.run(scenario())
        assert stats["recoveries"] == 1
        assert stats["degraded"] is False
        # With the transient fault retried, ALL pairs were admitted —
        # and the result still matches a fault-free cold run.
        assert np.array_equal(colors, asyncio.run(cold_colors(PAIRS)))

    def test_degraded_until_next_success(self):
        async def scenario():
            # Fault on the LAST arrival, so nothing heals afterwards.
            plan = grown_fault(at=(len(PAIRS) - 1,))
            async with ScheduleServer() as server:
                server.add_session(
                    "s", make_problem(), ServeConfig(fault_plan=plan)
                )
                for pair in PAIRS[:-1]:
                    await server.submit("s", pair)
                with pytest.raises(InjectedFault):
                    await server.submit("s", PAIRS[-1])
                degraded_after_fault = server.stats("s")["degraded"]
                decision = await server.submit("s", (9, 2))
                return degraded_after_fault, decision, server.stats("s")

        degraded_after_fault, decision, stats = asyncio.run(scenario())
        assert degraded_after_fault is True
        assert decision.accepted
        assert stats["degraded"] is False

    def test_broken_session_fences_off(self, monkeypatch):
        async def scenario():
            async with ScheduleServer() as server:
                session = server.add_session(
                    "s", make_problem(), ServeConfig(fault_plan=grown_fault())
                )
                await server.submit("s", PAIRS[0])

                def doomed_recover(snapshot=None):
                    raise RuntimeError("recovery impossible")

                monkeypatch.setattr(session, "recover", doomed_recover)
                with pytest.raises(InjectedFault):
                    await server.submit("s", PAIRS[1])
                stats_after = server.stats("s")
                fenced = await server.submit("s", PAIRS[2])
                return stats_after, fenced

        stats, fenced = asyncio.run(scenario())
        assert stats["broken"] is True
        assert stats["degraded"] is True
        assert fenced.accepted is False
        assert fenced.reason == "degraded"


class TestRequestDeadlines:
    def test_queued_arrival_past_deadline_is_rejected(self):
        async def scenario():
            release = asyncio.Event()

            async def slow_consumer(decision):
                # Stall the worker after the first admission so the
                # second arrival ages out while queued.
                if decision.handle is not None and decision.handle.uid == 12:
                    await release.wait()

            config = ServeConfig(
                request_deadline_s=0.1, on_admit=slow_consumer
            )
            async with ScheduleServer() as server:
                server.add_session("s", make_problem(), config)
                first = asyncio.create_task(server.submit("s", PAIRS[0]))
                await asyncio.sleep(0.01)
                second = asyncio.create_task(server.submit("s", PAIRS[1]))
                decision2 = await second
                release.set()
                decision1 = await first
                return decision1, decision2, server.stats("s")

        decision1, decision2, stats = asyncio.run(scenario())
        assert decision1.accepted
        assert decision2.accepted is False
        assert decision2.reason == "deadline"
        assert decision2.latency_s >= 0.1
        assert stats["rejected_deadline"] == 1
        # The deadline rejection never touched the session.
        assert stats["admitted"] == 1

    def test_fast_admission_beats_deadline(self):
        async def scenario():
            config = ServeConfig(request_deadline_s=30.0)
            async with ScheduleServer() as server:
                server.add_session("s", make_problem(), config)
                decisions = [await server.submit("s", p) for p in PAIRS]
                return decisions, server.stats("s")

        decisions, stats = asyncio.run(scenario())
        assert all(d.accepted for d in decisions)
        assert stats["rejected_deadline"] == 0

    def test_remove_session_with_pending_deadline_timer(self):
        """Satellite 4: removing a session while an arrival's deadline
        timer is still pending must reject the queued arrival cleanly
        (no orphaned timer firing into a dead session)."""

        async def scenario():
            release = asyncio.Event()

            async def slow_consumer(decision):
                await release.wait()

            config = ServeConfig(
                request_deadline_s=5.0, on_admit=slow_consumer
            )
            async with ScheduleServer() as server:
                server.add_session("s", make_problem(), config)
                first = asyncio.create_task(server.submit("s", PAIRS[0]))
                await asyncio.sleep(0.01)
                # Queued behind the stalled worker, deadline pending.
                second = asyncio.create_task(server.submit("s", PAIRS[1]))
                await asyncio.sleep(0.01)
                release.set()
                session = await server.remove_session("s")
                decision1 = await first
                decision2 = await second
                assert "s" not in server.sessions()
                # Give any orphaned timer a chance to misfire.
                await asyncio.sleep(0.05)
                # The returned session is still usable directly.
                session.add_requests([PAIRS[2]])
                return decision1, decision2, session

        decision1, decision2, session = asyncio.run(scenario())
        assert decision1.accepted
        assert decision2.accepted is False
        assert decision2.reason == "closed"
        assert session.check_consistency() is None


class TestShutdownRacingRecovery:
    def test_drain_and_aclose_race_inflight_retries(self):
        """Satellite 4: drain()/aclose() while the worker is mid-retry
        must neither hang nor leave unresolved futures."""

        async def scenario():
            # Faults on several arrivals, each retried once.
            plan = grown_fault(at=(0, 2, 4))
            config = ServeConfig(fault_plan=plan, admit_retries=1)
            async with ScheduleServer() as server:
                server.add_session("s", make_problem(), config)
                submits = [
                    asyncio.create_task(server.submit("s", p)) for p in PAIRS
                ]
                # Let every submit enqueue before draining, so drain
                # genuinely races the worker's retry loop.
                await asyncio.sleep(0)
                await server.drain("s")
                await server.aclose()
                decisions = await asyncio.gather(*submits)
                return decisions, server.stats("s")

        decisions, stats = asyncio.run(scenario())
        assert [d.accepted for d in decisions] == [True] * len(PAIRS)
        assert stats["recoveries"] == 3
        assert stats["admitted"] == len(PAIRS)

    def test_aclose_rejects_new_but_flushes_queued(self):
        async def scenario():
            plan = grown_fault(at=(1,))
            config = ServeConfig(fault_plan=plan, admit_retries=1)
            async with ScheduleServer() as server:
                server.add_session("s", make_problem(), config)
                submits = [
                    asyncio.create_task(server.submit("s", p))
                    for p in PAIRS[:3]
                ]
                await asyncio.sleep(0)
                closer = asyncio.create_task(server.aclose())
                await closer
                late = await server.submit("s", PAIRS[3])
                decisions = await asyncio.gather(*submits)
                return decisions, late

        decisions, late = asyncio.run(scenario())
        assert [d.accepted for d in decisions] == [True, True, True]
        assert late.accepted is False
        assert late.reason == "closed"
