"""E11 — §6 open problem: distributed vs centralized coloring.

The paper leaves open whether a *distributed* procedure can match the
centralized O(log n) approximation for the square-root assignment.
Earlier revisions measured a single-process *simulation* of the slotted
random-access protocol; the experiment now runs the real thing:
:func:`repro.distributed.distributed_protocol` stages the protocol as
``W`` message-passing node blocks on a
:class:`~repro.runner.executors.ShardExecutor` — each block draws its
own transmission coins from a private RNG stream and only the
channel's feasibility verdict crosses process boundaries.  Measured
against centralized first-fit: colors actually used, total protocol
slots (idle/collision slots included — the distributed cost), and
attempts per success.

``executor="process"`` (the ``full`` spec mode) runs the protocol on
real OS processes; ``"serial"`` (the default, and the ``fast`` mode)
runs the same message schedule in-process — outputs are bit-identical
for a given ``(seed, workers)`` by the executor determinism contract.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.distributed import distributed_protocol
from repro.experiments.e03_sqrt_universal import InstanceFactory, default_families
from repro.power.oblivious import SquareRootPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def run_distributed(
    n_values: Sequence[int] = (10, 20, 40),
    families: Optional[Dict[str, InstanceFactory]] = None,
    trials: int = 3,
    rng: RngLike = 61,
    workers: int = 2,
    executor: str = "serial",
) -> Table:
    """Measure the distributed protocol against centralized first-fit.

    *workers* node blocks run the protocol per trial on the named
    *executor* (``"serial"``/``"process"``); results depend only on the
    derived seeds and *workers*, never on the executor.
    """
    if families is None:
        families = default_families()
    rng = ensure_rng(rng)
    table = Table(
        title="E11: §6 — distributed random-access vs centralized coloring",
        columns=[
            "family",
            "n",
            "centralized_colors",
            "distributed_colors",
            "protocol_slots",
            "attempts_per_success",
            "distributed_overhead",
        ],
    )
    table.add_note(
        "protocol: slotted random access under the sqrt assignment with "
        "multiplicative backoff, run as message-passing node blocks "
        f"(workers={int(workers)}, executor={executor}); "
        "overhead = protocol slots / centralized colors"
    )
    for family_name, factory in families.items():
        for n in n_values:
            central, dist_colors, slots, att = [], [], [], []
            for child in spawn_rngs(rng, trials):
                instance = factory(n, child)
                protocol_seed = int(child.integers(2**31))
                baseline = run_algorithm(
                    "first_fit", instance, powers=SquareRootPower()(instance)
                ).schedule
                baseline.validate(instance)
                schedule, stats = distributed_protocol(
                    instance,
                    workers=workers,
                    executor=executor,
                    seed=protocol_seed,
                )
                schedule.validate(instance)
                central.append(baseline.num_colors)
                dist_colors.append(schedule.num_colors)
                slots.append(stats.slots)
                att.append(stats.attempts_per_success)
            table.add_row(
                family=family_name,
                n=n,
                centralized_colors=float(np.mean(central)),
                distributed_colors=float(np.mean(dist_colors)),
                protocol_slots=float(np.mean(slots)),
                attempts_per_success=float(np.mean(att)),
                distributed_overhead=float(np.mean(slots)) / float(np.mean(central)),
            )
    return table
SPEC = ExperimentSpec(
    id="e11",
    title="Distributed protocol vs centralized",
    runner="repro.experiments.e11_distributed:run_distributed",
    full={"n_values": (10, 20, 40), "trials": 2, "executor": "process"},
    fast={"n_values": (8,), "trials": 1, "executor": "serial"},
    seed=61,
    shard_by="n_values",
    metric="distributed_overhead",
    algorithms=("distributed", "first_fit"),
)
