"""Bounded-queue asyncio front-end over live scheduling sessions.

Architecture
------------
One :class:`ScheduleServer` owns any number of named sessions.  Each
session gets

* a bounded :class:`asyncio.Queue` of pending arrivals,
* a single worker task that drains the queue and admits each arrival
  through the session's live kernel (``Session.add_requests`` → one
  O(n) vectorized admission, no context rebuild),
* admission control: arrivals are rejected up front when the session
  is at its ``max_requests`` cap, and — under the ``"shed"`` overflow
  policy — when the queue is full.

Under the default ``"wait"`` policy a full queue instead blocks the
producer inside :meth:`ScheduleServer.submit` (backpressure).  All
session state is touched only from the event loop thread, so no locks
are needed: the worker serializes arrivals per session, and departures
run inline between queue items.

Fault tolerance
---------------
The worker supervises every admission (see
:meth:`repro.api.Session.recover`): before mutating, it snapshots the
live kernel; an exception escaping ``add_requests`` triggers a
transactional rollback — bitwise snapshot restore when the kernel state
is intact, an automatic compacting rebuild when the session was left
half-mutated.  Either way the session stays structurally consistent and
the *next* arrival schedules bit-identically to a cold rebuild over the
same active set.  Recoveries are counted in
:attr:`SessionStats.recoveries` and flag the session ``degraded`` until
an admission succeeds again; if recovery itself fails the session is
marked ``broken`` and further arrivals are rejected with reason
``"degraded"``.

Per-request deadlines (:attr:`ServeConfig.request_deadline_s`) bound
the time an arrival may wait for its decision: an arrival still queued
when its deadline fires is rejected with reason ``"deadline"``.  The
event loop is single-threaded and admission is synchronous, so a
deadline timer can never fire mid-admission — the worker cancels it
before touching the session.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api import Problem, RequestHandle, Session
from repro.resilience.faults import FaultPlan

__all__ = [
    "AdmissionDecision",
    "ScheduleServer",
    "ServeConfig",
    "SessionStats",
]


@dataclass(frozen=True)
class ServeConfig:
    """Per-session queueing and admission-control knobs.

    Parameters
    ----------
    queue_capacity:
        Bound on the arrival queue.  With ``overflow="wait"`` a full
        queue blocks producers in :meth:`ScheduleServer.submit`; with
        ``overflow="shed"`` the arrival is rejected immediately.
    max_requests:
        Cap on the session's *active* request count.  Arrivals that
        would exceed it are rejected with reason ``"capacity"``.
        ``None`` means unbounded.
    overflow:
        ``"wait"`` (backpressure, the default) or ``"shed"``.
    on_admit:
        Optional async consumer invoked by the worker after every
        decision.  A slow consumer slows the worker, which fills the
        queue and propagates backpressure to producers.
    request_deadline_s:
        Per-request decision deadline (seconds from submit), or
        ``None`` for no limit.  An arrival whose deadline fires while
        it is still queued is rejected with reason ``"deadline"``
        (counted in :attr:`SessionStats.rejected_deadline`).
    admit_retries:
        Extra admission attempts after a recovered failure (default 0:
        the first failure is recovered, then surfaced to the producer).
        Retries re-run the same arrival against the healed session —
        useful when faults are transient.
    fault_plan:
        Deterministic :class:`~repro.resilience.FaultPlan` installed on
        the session at registration (fires at ``site="session"`` with
        the session's name as key).  Test/chaos tooling only.
    """

    queue_capacity: int = 64
    max_requests: Optional[int] = None
    overflow: str = "wait"
    on_admit: Optional[Callable[["AdmissionDecision"], Awaitable[None]]] = None
    request_deadline_s: Optional[float] = None
    admit_retries: int = 0
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError("max_requests must be >= 1 or None")
        if self.overflow not in ("wait", "shed"):
            raise ValueError(
                f"overflow must be 'wait' or 'shed', got {self.overflow!r}"
            )
        if self.request_deadline_s is not None and self.request_deadline_s <= 0:
            raise ValueError(
                "request_deadline_s must be positive or None, "
                f"got {self.request_deadline_s}"
            )
        if self.admit_retries < 0:
            raise ValueError(
                f"admit_retries must be >= 0, got {self.admit_retries}"
            )


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one submitted arrival.

    ``accepted`` arrivals carry the stable :class:`RequestHandle` and
    the color class the live kernel admitted them into.  Rejected
    arrivals carry ``reason`` (``"capacity"``, ``"queue_full"``,
    ``"deadline"``, ``"degraded"``, or ``"closed"``) and a handle/color
    of ``None``/``-1``.  ``latency_s`` is wall time from submit to
    decision, queue wait included.
    """

    session: str
    handle: Optional[RequestHandle]
    color: int
    accepted: bool
    reason: Optional[str]
    latency_s: float


@dataclass
class SessionStats:
    """Running counters for one served session."""

    submitted: int = 0
    admitted: int = 0
    rejected_capacity: int = 0
    rejected_queue: int = 0
    rejected_deadline: int = 0
    departures: int = 0
    #: Supervised-admission recoveries (snapshot restores + rebuilds).
    recoveries: int = 0
    #: True from a recovery until the next successful admission.
    degraded: bool = False
    #: True when recovery itself failed; the session no longer admits.
    broken: bool = False
    latencies_s: List[float] = field(default_factory=list)
    first_submit: Optional[float] = None
    last_decision: Optional[float] = None

    def snapshot(self) -> Dict[str, Any]:
        lat = np.asarray(self.latencies_s, dtype=np.float64)
        elapsed = (
            self.last_decision - self.first_submit
            if self.first_submit is not None
            and self.last_decision is not None
            and self.last_decision > self.first_submit
            else None
        )
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected_capacity": self.rejected_capacity,
            "rejected_queue": self.rejected_queue,
            "rejected_deadline": self.rejected_deadline,
            "departures": self.departures,
            "recoveries": self.recoveries,
            "degraded": self.degraded,
            "broken": self.broken,
            "arrivals_per_sec": (
                self.admitted / elapsed if elapsed else None
            ),
            "mean_latency_s": float(lat.mean()) if lat.size else None,
            "p50_latency_s": float(np.percentile(lat, 50)) if lat.size else None,
            "p99_latency_s": float(np.percentile(lat, 99)) if lat.size else None,
        }


@dataclass
class _Arrival:
    pair: Tuple[int, int]
    power: Optional[float]
    future: "asyncio.Future[AdmissionDecision]"
    submitted_at: float
    #: Pending deadline timer, cancelled by the worker before admission.
    expire_handle: Optional[asyncio.TimerHandle] = None


class _Served:
    """One session plus its queue, worker, and counters."""

    def __init__(self, name: str, session: Session, config: ServeConfig):
        self.name = name
        self.session = session
        self.config = config
        self.queue: "asyncio.Queue[_Arrival]" = asyncio.Queue(
            maxsize=config.queue_capacity
        )
        self.worker: Optional[asyncio.Task] = None
        self.stats = SessionStats()


class ScheduleServer:
    """Multiplex live sessions behind bounded arrival queues.

    Use as an async context manager (or call :meth:`aclose` yourself)::

        async with ScheduleServer() as server:
            server.add_session("cell-a", Problem(instance))
            decision = await server.submit("cell-a", (sender, receiver))

    All methods must be called from the owning event loop.
    """

    def __init__(self, default_config: Optional[ServeConfig] = None):
        self._default_config = default_config or ServeConfig()
        self._served: Dict[str, _Served] = {}
        self._closed = False

    # -- session lifecycle -------------------------------------------------

    def add_session(
        self,
        name: str,
        problem: Union[Problem, Session],
        config: Optional[ServeConfig] = None,
    ) -> Session:
        """Register *problem* under *name* and start its worker."""
        if self._closed:
            raise RuntimeError("server is closed")
        if name in self._served:
            raise ValueError(f"session {name!r} already registered")
        session = (
            problem if isinstance(problem, Session) else problem.session()
        )
        served = _Served(name, session, config or self._default_config)
        if served.config.fault_plan is not None:
            session.set_fault_hook(served.config.fault_plan, key=name)
        served.worker = asyncio.get_running_loop().create_task(
            self._drain_queue(served), name=f"repro-serve-{name}"
        )
        self._served[name] = served
        return session

    async def remove_session(self, name: str) -> Session:
        """Unregister *name*: stop its worker, reject everything still
        queued (reason ``"closed"``, pending deadline timers cancelled)
        and return the — still usable — :class:`Session`."""
        served = self._lookup(name)
        del self._served[name]
        if served.worker is not None:
            served.worker.cancel()
            try:
                await served.worker
            except asyncio.CancelledError:
                pass
            served.worker = None
        while True:
            try:
                arrival = served.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if arrival.expire_handle is not None:
                arrival.expire_handle.cancel()
                arrival.expire_handle = None
            if not arrival.future.done():
                arrival.future.set_result(
                    self._reject(served, "closed", arrival.submitted_at)
                )
            served.queue.task_done()
        return served.session

    def session(self, name: str) -> Session:
        return self._lookup(name).session

    def sessions(self) -> List[str]:
        return list(self._served)

    def _lookup(self, name: str) -> _Served:
        try:
            return self._served[name]
        except KeyError:
            raise KeyError(f"no session named {name!r}") from None

    # -- arrivals ----------------------------------------------------------

    async def submit(
        self,
        name: str,
        pair: Tuple[int, int],
        power: Optional[float] = None,
    ) -> AdmissionDecision:
        """Submit one arrival and await its admission decision.

        Applies admission control up front (n-cap, then queue policy),
        then parks the arrival on the session's bounded queue.  Under
        ``overflow="wait"`` a full queue suspends this coroutine until
        the worker frees a slot — that suspension *is* the
        backpressure signal to the producer.  With
        :attr:`ServeConfig.request_deadline_s` set, an arrival still
        undecided when the deadline fires is rejected with reason
        ``"deadline"`` (the deadline clock starts here, so queue wait
        — including backpressure wait — counts against it).
        """
        served = self._lookup(name)
        now = time.perf_counter()
        served.stats.submitted += 1
        if served.stats.first_submit is None:
            served.stats.first_submit = now

        if self._closed:
            return self._reject(served, "closed", now)
        if served.stats.broken:
            return self._reject(served, "degraded", now)
        if self._at_capacity(served):
            served.stats.rejected_capacity += 1
            return self._reject(served, "capacity", now)

        arrival = _Arrival(
            pair=(int(pair[0]), int(pair[1])),
            power=None if power is None else float(power),
            future=asyncio.get_running_loop().create_future(),
            submitted_at=now,
        )
        if served.config.request_deadline_s is not None:
            arrival.expire_handle = asyncio.get_running_loop().call_later(
                served.config.request_deadline_s,
                self._expire,
                served,
                arrival,
            )
        if served.config.overflow == "shed":
            try:
                served.queue.put_nowait(arrival)
            except asyncio.QueueFull:
                if arrival.expire_handle is not None:
                    arrival.expire_handle.cancel()
                    arrival.expire_handle = None
                served.stats.rejected_queue += 1
                return self._reject(served, "queue_full", now)
        else:
            await served.queue.put(arrival)
        return await arrival.future

    def _expire(self, served: _Served, arrival: _Arrival) -> None:
        """Deadline timer callback: reject an arrival still undecided.

        Runs on the event loop between tasks — never mid-admission,
        because the worker cancels the timer (synchronously, before its
        first await point after dequeue) before touching the session.
        """
        arrival.expire_handle = None
        if arrival.future.done():
            return
        served.stats.rejected_deadline += 1
        arrival.future.set_result(
            self._reject(served, "deadline", arrival.submitted_at)
        )

    def remove(
        self, name: str, handles: Union[RequestHandle, int, list]
    ) -> None:
        """Depart *handles* from the named session, exactly, in place."""
        served = self._lookup(name)
        if not isinstance(handles, list):
            handles = [handles]
        served.session.remove_requests(handles)
        served.stats.departures += len(handles)

    def _at_capacity(self, served: _Served) -> bool:
        cap = served.config.max_requests
        if cap is None:
            return False
        # Queued-but-unadmitted arrivals count against the cap so a
        # burst cannot overshoot it while the worker catches up.
        return served.session.active_requests + served.queue.qsize() >= cap

    def _reject(
        self, served: _Served, reason: str, submitted_at: float
    ) -> AdmissionDecision:
        now = time.perf_counter()
        served.stats.last_decision = now
        return AdmissionDecision(
            session=served.name,
            handle=None,
            color=-1,
            accepted=False,
            reason=reason,
            latency_s=now - submitted_at,
        )

    # -- worker ------------------------------------------------------------

    async def _drain_queue(self, served: _Served) -> None:
        while True:
            arrival = await served.queue.get()
            try:
                # Cancel the deadline timer before any session mutation:
                # from here to the decision there is no await point, so
                # the timer can never observe a half-admitted session.
                if arrival.expire_handle is not None:
                    arrival.expire_handle.cancel()
                    arrival.expire_handle = None
                if arrival.future.done():
                    # Expired (or otherwise settled) while queued.
                    continue
                decision = self._admit_guarded(served, arrival)
                if not arrival.future.done():
                    arrival.future.set_result(decision)
                if served.config.on_admit is not None:
                    await served.config.on_admit(decision)
            except Exception as exc:  # surface to the producer, keep serving
                if not arrival.future.done():
                    arrival.future.set_exception(exc)
            finally:
                served.queue.task_done()

    def _admit_guarded(
        self, served: _Served, arrival: _Arrival
    ) -> AdmissionDecision:
        """Supervised admission: snapshot → admit → roll back on error.

        A failed attempt is healed via :meth:`Session.recover` (bitwise
        kernel restore, or compacting rebuild when the session was left
        half-mutated) and retried up to ``admit_retries`` extra times;
        when the budget is gone the last exception propagates to the
        producer — with the session already healed, so subsequent
        arrivals are unaffected.  If recovery *itself* fails the
        session is marked broken and stops admitting.
        """
        if served.stats.broken:
            return self._reject(served, "degraded", arrival.submitted_at)
        session = served.session
        last_exc: Optional[Exception] = None
        for _ in range(served.config.admit_retries + 1):
            kernel = session.live_kernel
            snap = kernel.snapshot() if kernel is not None else None
            try:
                decision = self._admit(served, arrival)
            except Exception as exc:
                last_exc = exc
                try:
                    session.recover(snap)
                except Exception:
                    # The session is beyond self-healing: fence it off
                    # so it cannot serve inconsistent answers.  The
                    # producer still sees the original admission error
                    # (the recovery failure rides along as __context__).
                    served.stats.broken = True
                    served.stats.degraded = True
                    raise exc
                served.stats.recoveries += 1
                served.stats.degraded = True
                continue
            # A successful admission clears the degraded flag: the
            # session has demonstrably healed.  (A capacity rejection
            # proves nothing either way, so it leaves the flag alone.)
            if decision.accepted:
                served.stats.degraded = False
            return decision
        raise last_exc

    def _admit(self, served: _Served, arrival: _Arrival) -> AdmissionDecision:
        session = served.session
        cap = served.config.max_requests
        if cap is not None and session.active_requests >= cap:
            served.stats.rejected_capacity += 1
            return self._reject(served, "capacity", arrival.submitted_at)
        session.ensure_live()
        powers = None if arrival.power is None else [arrival.power]
        handle = session.add_requests([arrival.pair], powers=powers)[0]
        color = session.color_of(handle)
        now = time.perf_counter()
        served.stats.admitted += 1
        served.stats.latencies_s.append(now - arrival.submitted_at)
        served.stats.last_decision = now
        return AdmissionDecision(
            session=served.name,
            handle=handle,
            color=color,
            accepted=True,
            reason=None,
            latency_s=now - arrival.submitted_at,
        )

    # -- introspection -----------------------------------------------------

    def stats(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Counters and latency percentiles, per session or for all."""
        if name is not None:
            return self._lookup(name).stats.snapshot()
        return {n: s.stats.snapshot() for n, s in self._served.items()}

    def pending(self, name: str) -> int:
        return self._lookup(name).queue.qsize()

    # -- shutdown ----------------------------------------------------------

    async def drain(self, name: Optional[str] = None) -> None:
        """Wait until the named queue (or every queue) is fully admitted."""
        targets = (
            [self._lookup(name)] if name is not None
            else list(self._served.values())
        )
        await asyncio.gather(*(s.queue.join() for s in targets))

    async def aclose(self) -> None:
        """Drain every queue, then stop the workers.

        New ``submit`` calls are rejected with reason ``"closed"``
        as soon as this starts; arrivals already queued are still
        admitted before the workers stop.
        """
        if self._closed:
            return
        self._closed = True
        await self.drain()
        for served in self._served.values():
            if served.worker is not None:
                served.worker.cancel()
        for served in self._served.values():
            if served.worker is not None:
                try:
                    await served.worker
                except asyncio.CancelledError:
                    pass

    async def __aenter__(self) -> "ScheduleServer":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()
