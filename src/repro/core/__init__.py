"""Core problem model: requests, instances, SINR feasibility, schedules.

This subpackage implements Section 1.1 of the paper: the directed and
bidirectional interference scheduling problems in the physical (SINR)
model, plus the schedule representation shared by all algorithms.
"""

from repro.core.batch import (
    BatchFallbackInfo,
    ContextBatch,
    ContextPool,
    batch_margins,
    batch_validate_schedules,
)
from repro.core.context import (
    ClassAccumulator,
    InterferenceContext,
    cache_info,
    clear_context_cache,
    context_cache_limit,
    engine_disabled,
    engine_enabled,
    get_context,
    set_context_cache_limit,
    set_engine_enabled,
)
from repro.core.gains import (
    DenseBackend,
    GainBackend,
    SparseBackend,
    backend_scope,
    build_backend,
    default_backend,
    set_default_backend,
    set_sparse_epsilon,
)
from repro.core.errors import (
    InfeasibleError,
    InvalidInstanceError,
    InvalidScheduleError,
    ReproError,
)
from repro.core.instance import Direction, Instance
from repro.core.kernels import (
    ScheduleKernel,
    kernels_disabled,
    kernels_enabled,
    peel_max_feasible_subset,
    set_kernels_enabled,
    stacked_first_fit,
)
from repro.core.interference import (
    bidirectional_gain_matrices,
    bidirectional_interference,
    directed_gain_matrix,
    directed_interference,
)
from repro.core.feasibility import (
    feasible_subset_mask,
    is_feasible_partition,
    is_feasible_subset,
    sinr_margins,
    scale_powers_for_noise,
    signal_strengths,
)
from repro.core.schedule import Schedule, build_schedule

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleError",
    "InterferenceContext",
    "ClassAccumulator",
    "BatchFallbackInfo",
    "ContextBatch",
    "ContextPool",
    "batch_margins",
    "batch_validate_schedules",
    "get_context",
    "engine_enabled",
    "engine_disabled",
    "set_engine_enabled",
    "cache_info",
    "clear_context_cache",
    "context_cache_limit",
    "set_context_cache_limit",
    "GainBackend",
    "DenseBackend",
    "SparseBackend",
    "build_backend",
    "default_backend",
    "set_default_backend",
    "set_sparse_epsilon",
    "backend_scope",
    "ScheduleKernel",
    "peel_max_feasible_subset",
    "stacked_first_fit",
    "kernels_enabled",
    "kernels_disabled",
    "set_kernels_enabled",
    "Direction",
    "Instance",
    "Schedule",
    "build_schedule",
    "directed_gain_matrix",
    "directed_interference",
    "bidirectional_gain_matrices",
    "bidirectional_interference",
    "signal_strengths",
    "sinr_margins",
    "is_feasible_subset",
    "is_feasible_partition",
    "feasible_subset_mask",
    "scale_powers_for_noise",
]
