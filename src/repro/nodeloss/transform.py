"""The pair <-> node reductions of §3.2.

Forward direction (pairs to nodes): if a set of pairs ``U`` can be
scheduled with gain ``gamma`` in the (bidirectional) interference
scheduling problem, then the set of all endpoint nodes of ``U`` is
``gamma / (2 + gamma)``-feasible for the node-loss problem — each node
inherits its pair's link loss as its loss parameter.

Backward direction (nodes to pairs): a feasible node-loss schedule
step ``S`` yields a feasible pair step by keeping the pairs with
*both* endpoints in ``S`` (the pair-world interference at a node is at
most the node-world interference).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.instance import Direction, Instance
from repro.nodeloss.instance import NodeLossInstance


def node_gain_from_pair_gain(gamma: float) -> float:
    """The gain carried over by the splitting argument: ``gamma / (2 + gamma)``.

    §3.2: if all nodes from pairs in ``U`` transmit, the interference
    at a single node is at most twice the pair-world interference plus
    the partner's signal ``p_i / l_i``, so
    ``I(i) <= (2 + gamma) / gamma * p_i / l_i`` and the node set is
    ``gamma / (2 + gamma)``-feasible.
    """
    if not gamma > 0:
        raise ValueError(f"gamma must be > 0, got {gamma}")
    return gamma / (2.0 + gamma)


def nodeloss_from_pairs(instance: Instance) -> Tuple[NodeLossInstance, np.ndarray]:
    """Split each pair into its two endpoint nodes (§3.2).

    Returns ``(node_instance, pair_of_node)`` where node ``2i`` is the
    sender and node ``2i + 1`` the receiver of pair ``i``, both with
    loss parameter ``l(u_i, v_i)``; ``pair_of_node[k] = k // 2`` maps
    node-loss nodes back to their pair.
    """
    if instance.direction is not Direction.BIDIRECTIONAL:
        raise ValueError(
            "the splitting reduction is defined for bidirectional instances"
        )
    dist = instance.metric.distance_matrix()
    nodes = np.empty(2 * instance.n, dtype=int)
    nodes[0::2] = instance.senders
    nodes[1::2] = instance.receivers
    sub = dist[np.ix_(nodes, nodes)]
    losses = np.repeat(instance.link_losses, 2)
    node_instance = NodeLossInstance(
        sub, losses, alpha=instance.alpha, beta=instance.beta
    )
    pair_of_node = np.repeat(np.arange(instance.n), 2)
    return node_instance, pair_of_node


def pairs_fully_selected(selected_nodes: Sequence[int], n_pairs: int) -> np.ndarray:
    """Pairs whose *both* endpoint nodes appear in *selected_nodes*.

    Node indexing follows :func:`nodeloss_from_pairs` (sender ``2i``,
    receiver ``2i + 1``).
    """
    chosen = set(int(k) for k in selected_nodes)
    pairs = [
        i for i in range(n_pairs) if (2 * i) in chosen and (2 * i + 1) in chosen
    ]
    return np.asarray(pairs, dtype=int)
