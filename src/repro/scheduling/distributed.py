"""Distributed coloring via slotted random access (§6 open problem).

"The presented coloring algorithm for the square root power assignment
is centralized.  It is an open question, whether there is a
distributed coloring procedure that achieves the same kind of
performance guarantee."

This module implements the natural distributed candidate so the
question can be studied empirically: a slotted ALOHA-style protocol in
which every unscheduled request transmits in each slot independently
with its current probability, succeeding when its SINR constraint
holds against *all* transmitters of the slot.

Soundness: the successes of a slot heard each other plus the failed
transmitters, so by monotonicity of interference they remain feasible
once the failures fall silent — each slot's success set is a valid
color class, and the protocol's output is a genuine
:class:`~repro.core.schedule.Schedule`.

Two probability policies are provided:

* ``fixed`` — every request keeps probability ``p0``;
* ``backoff`` — multiplicative decrease on failure, reset on success
  of others is not needed (a request leaves once it succeeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.context import maybe_context
from repro.core.errors import ReproError
from repro.core.feasibility import feasible_subset_mask
from repro.core.instance import Instance
from repro.core.schedule import Schedule, build_schedule
from repro.power.base import PowerAssignment
from repro.power.oblivious import SquareRootPower
from repro.util.rng import RngLike, ensure_rng


class ProtocolStalledError(ReproError, RuntimeError):
    """The protocol exhausted its slot budget with requests pending."""


@dataclass
class DistributedStats:
    """Diagnostics of a protocol run."""

    slots: int = 0
    attempts: int = 0
    successes: int = 0
    idle_slots: int = 0
    collision_slots: int = 0
    successes_per_slot: List[int] = field(default_factory=list)

    @property
    def attempts_per_success(self) -> float:
        """Mean transmission attempts paid per scheduled request."""
        return self.attempts / self.successes if self.successes else float("inf")


def distributed_coloring(
    instance: Instance,
    power: Optional[PowerAssignment] = None,
    policy: str = "backoff",
    p0: float = 0.5,
    backoff: float = 0.5,
    p_min: float = 1.0 / 1024.0,
    max_slots: Optional[int] = None,
    rng: RngLike = None,
) -> Tuple[Schedule, DistributedStats]:
    """Run the slotted random-access protocol to completion.

    Parameters
    ----------
    instance:
        The requests to schedule.
    power:
        Oblivious assignment used by every node (each node can compute
        its own power locally — that is the point of obliviousness);
        defaults to the square-root assignment.
    policy:
        ``"fixed"`` or ``"backoff"``.
    p0:
        Initial transmission probability.
    backoff:
        Multiplicative factor applied to a request's probability after
        a failed attempt (backoff policy only).
    p_min:
        Probability floor (keeps progress guaranteed in expectation).
    max_slots:
        Slot budget; defaults to ``64 * n / p_min`` — generous enough
        that hitting it indicates a genuinely stuck configuration
        (e.g. two requests sharing a node, which can *never* both
        succeed in the same slot but will separate eventually).

    Returns
    -------
    (schedule, stats)

    Raises
    ------
    ProtocolStalledError
        If the slot budget is exhausted before all requests succeed.
    """
    if policy not in ("fixed", "backoff"):
        raise ValueError(f"unknown policy {policy!r}")
    if not 0 < p0 <= 1:
        raise ValueError(f"p0 must be in (0, 1], got {p0}")
    if not 0 < backoff < 1:
        raise ValueError(f"backoff must be in (0, 1), got {backoff}")
    if not 0 < p_min <= p0:
        raise ValueError("p_min must satisfy 0 < p_min <= p0")
    rng = ensure_rng(rng)
    if power is None:
        power = SquareRootPower()
    powers = power(instance)
    # One shared context serves every slot's feasibility check (the
    # power vector never changes during the run).
    context = maybe_context(instance, powers)
    if max_slots is None:
        max_slots = int(64 * instance.n / p_min)

    colors = np.full(instance.n, -1, dtype=int)
    probability = np.full(instance.n, p0)
    pending = np.ones(instance.n, dtype=bool)
    stats = DistributedStats()
    color = 0

    for _ in range(max_slots):
        if not np.any(pending):
            break
        transmitting = pending & (rng.uniform(size=instance.n) < probability)
        transmitters = np.flatnonzero(transmitting)
        stats.slots += 1
        if transmitters.size == 0:
            stats.idle_slots += 1
            continue
        stats.attempts += int(transmitters.size)
        if context is not None:
            ok = context.feasible_mask(transmitters)
        else:
            ok = feasible_subset_mask(instance, powers, transmitters)
        winners = transmitters[ok]
        losers = transmitters[~ok]
        if winners.size:
            colors[winners] = color
            pending[winners] = False
            color += 1
            stats.successes += int(winners.size)
            stats.successes_per_slot.append(int(winners.size))
        else:
            stats.collision_slots += 1
        if policy == "backoff" and losers.size:
            probability[losers] = np.maximum(
                probability[losers] * backoff, p_min
            )

    if np.any(pending):
        raise ProtocolStalledError(
            f"{int(pending.sum())} requests still pending after "
            f"{stats.slots} slots"
        )
    return build_schedule(colors, powers, copy_powers=False), stats
