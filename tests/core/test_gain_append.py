"""In-place backend growth: append_requests vs. cold rebuild.

The tentpole contract: appending rows/columns to a built backend is
bit-identical to rebuilding the backend from scratch on the grown
``(instance, powers)`` — for the dense backend always, and for the
sparse backend at ``epsilon=0`` (the lossless setting the conformance
grid runs on).  ε>0 appends stay conservative (pruned mass only ever
adds to the bound) but are exempt from bit-identity, because pruning
a row tile in isolation cannot reproduce the whole-row kept set.
"""

import numpy as np
import pytest

from repro.core.gains import (
    ArrayBackend,
    DenseBackend,
    SparseBackend,
    validate_growth,
)
from repro.core.instance import Instance
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower


def _grown(small, n_new, rng):
    """A larger instance whose prefix is exactly *small*."""
    metric_size = small.metric.n
    senders = rng.integers(0, metric_size, size=n_new - small.n)
    offsets = rng.integers(1, metric_size, size=n_new - small.n)
    receivers = (senders + offsets) % metric_size
    return Instance(
        small.metric,
        np.concatenate([small.senders, senders]),
        np.concatenate([small.receivers, receivers]),
        direction=small.direction,
        alpha=small.alpha,
    )


def _base(n, direction, rng_seed, metric_nodes=40):
    rng = np.random.default_rng(rng_seed)
    full = random_uniform_instance(
        metric_nodes // 2, rng=rng_seed, direction=direction
    )
    senders = full.senders[:n]
    receivers = full.receivers[:n]
    return Instance(
        full.metric, senders, receivers, direction=direction, alpha=full.alpha
    ), rng


def _build(backend_cls, instance, powers):
    if backend_cls is SparseBackend:
        return SparseBackend.build(instance, powers, epsilon=0.0)
    if backend_cls is ArrayBackend:
        return ArrayBackend.build(instance, powers, namespace="numpy")
    return DenseBackend.build(instance, powers)


def _backend_state(backend):
    """Everything observable: gains, transposes, masses, flags."""
    state = {
        "gains_u": np.array(backend.dense_u(), copy=True),
        "gains_v": np.array(backend.dense_v(), copy=True),
        "gains_ut": np.array(backend.dense_ut(), copy=True),
        "gains_vt": np.array(backend.dense_vt(), copy=True),
        "has_inf": backend.has_infinite_gains,
        "pruned_u": np.array(backend.pruned_mass_u, copy=True),
        "pruned_v": np.array(backend.pruned_mass_v, copy=True),
    }
    n = state["gains_u"].shape[0]
    rows = np.arange(n)
    state["row_sums_u"] = backend.row_sums_u(rows)
    state["row_sums_v"] = backend.row_sums_v(rows)
    if n:
        state["col0_u"] = backend.col_u(0)
        state["cross"] = backend.cross_block_u(rows[: n // 2], rows[n // 2 :])
    return state


def _assert_identical(grown, cold):
    a, b = _backend_state(grown), _backend_state(cold)
    assert a.keys() == b.keys()
    for key in a:
        if key == "has_inf":
            assert a[key] == b[key]
        else:
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)


@pytest.mark.parametrize("direction", ["directed", "bidirectional"])
@pytest.mark.parametrize(
    "backend_cls", [DenseBackend, SparseBackend, ArrayBackend]
)
class TestAppendBitIdentity:
    def test_single_append_matches_cold_build(self, backend_cls, direction):
        small, rng = _base(6, direction, rng_seed=11)
        big = _grown(small, 9, rng)
        powers = SquareRootPower()(big)

        grown = _build(backend_cls, small, powers[: small.n])
        grown.append_requests(big, powers)
        cold = _build(backend_cls, big, powers)
        _assert_identical(grown, cold)

    def test_repeated_appends_match_cold_build(self, backend_cls, direction):
        small, rng = _base(5, direction, rng_seed=13)
        sizes = [7, 8, 12, 17]
        instances = [small]
        for size in sizes:
            instances.append(_grown(instances[-1], size, rng))
        final_powers = SquareRootPower()(instances[-1])

        grown = _build(backend_cls, small, final_powers[: small.n])
        for inst in instances[1:]:
            grown.append_requests(inst, final_powers[: inst.n])
            cold = _build(backend_cls, inst, final_powers[: inst.n])
            _assert_identical(grown, cold)

    def test_shared_node_pairs_append_infinite_gains(
        self, backend_cls, direction
    ):
        """Arrivals sharing a node with an existing request create inf
        gains in the appended block; the flag and values must match a
        cold build exactly."""
        small, rng = _base(6, direction, rng_seed=17)
        # Both arrivals reuse a node of request 0 as an endpoint.
        s0 = int(small.senders[0])
        r0 = int(small.receivers[0])
        # An arrival *sent from* r0 collides with request 0's receiver
        # in both variants (directed gains key on sender-vs-receiver).
        big = Instance(
            small.metric,
            np.concatenate([small.senders, [r0, s0]]),
            np.concatenate(
                [small.receivers, [int(small.senders[1]), int(small.receivers[1])]]
            ),
            direction=small.direction,
            alpha=small.alpha,
        )
        powers = SquareRootPower()(big)
        grown = _build(backend_cls, small, powers[: small.n])
        assert not grown.has_infinite_gains
        grown.append_requests(big, powers)
        cold = _build(backend_cls, big, powers)
        assert grown.has_infinite_gains
        _assert_identical(grown, cold)

    def test_raw_backend_cannot_grow(self, backend_cls, direction):
        small, rng = _base(4, direction, rng_seed=19)
        big = _grown(small, 6, rng)
        powers = SquareRootPower()(big)
        if backend_cls is DenseBackend:
            gains = np.zeros((small.n, small.n))
            backend = DenseBackend(gains, gains)
        elif backend_cls is ArrayBackend:
            gains = np.zeros((small.n, small.n))
            backend = ArrayBackend(np, gains, gains, "numpy")
        else:
            import scipy.sparse as sp

            csr = sp.csr_matrix((small.n, small.n))
            zero = np.zeros(small.n)
            backend = SparseBackend(csr, csr, zero, zero.copy(), 0.0, False)
        with pytest.raises(ValueError, match="grow"):
            backend.append_requests(big, powers)


@pytest.mark.parametrize("direction", ["directed", "bidirectional"])
class TestDenseTransposeGrowth:
    def test_materialized_transposes_grow_in_place(self, direction):
        """A transpose cache warmed before the appends must be extended
        (bit-identical to re-transposing) rather than re-materialized —
        re-transposing would make every O(n) arrival quadratic."""
        small, rng = _base(5, direction, rng_seed=37)
        inst = small
        backend = DenseBackend.build(small, SquareRootPower()(small))
        backend.gains_ut  # warm the cache
        for size in (7, 10, 16):
            inst = _grown(inst, size, rng)
            backend.append_requests(inst, SquareRootPower()(inst))
            cold = DenseBackend.build(inst, SquareRootPower()(inst))
            np.testing.assert_array_equal(backend.gains_ut, cold.gains_ut)
            np.testing.assert_array_equal(backend.gains_vt, cold.gains_vt)
            assert backend.gains_ut.flags.writeable is False
        # The grown transposes are buffer views, not fresh transposes.
        assert backend._buf_ut is not None
        assert backend.gains_ut.base is backend._buf_ut
        if direction == "directed":
            assert backend.gains_vt is backend.gains_ut


class TestDenseCapacity:
    def test_capacity_doubles_and_views_stay_readonly(self):
        small, rng = _base(4, "directed", rng_seed=23)
        powers_small = SquareRootPower()(small)
        backend = DenseBackend.build(small, powers_small)
        buf_before = backend._buf_u
        sizes = [5, 6, 7, 8]
        inst = small
        for size in sizes:
            inst = _grown(inst, size, rng)
            backend.append_requests(inst, SquareRootPower()(inst))
        # 4 -> 8 fits inside one doubling: the buffer reallocated at
        # most once, not once per append.
        assert backend._buf_u.shape[0] >= 8
        assert backend._buf_u is not buf_before
        gains = backend.dense_u()
        assert gains.shape == (8, 8)
        with pytest.raises((ValueError, RuntimeError)):
            gains[0, 0] = 1.0


class TestSparseEpsilonAppend:
    def test_pruned_append_is_conservative(self):
        """ε>0 appends keep the pruned-mass bound a true upper bound
        on what was dropped, even though the kept set may differ from
        a cold rebuild's."""
        small, rng = _base(8, "directed", rng_seed=29)
        big = _grown(small, 14, rng)
        powers = SquareRootPower()(big)
        epsilon = 0.2

        grown = SparseBackend.build(small, powers[: small.n], epsilon=epsilon)
        grown.append_requests(big, powers)
        dense = DenseBackend.build(big, powers)

        rows = np.arange(big.n)
        full = dense.row_sums_u(rows)
        kept = grown.row_sums_u(rows)
        pruned = grown.pruned_mass_u
        finite = np.isfinite(full)
        dropped = full[finite] - kept[finite]
        assert np.all(
            dropped <= pruned[finite] + 1e-12 * np.abs(full[finite])
        )
        assert np.all(pruned >= 0)


class TestValidateGrowth:
    def _pair(self):
        small, rng = _base(5, "directed", rng_seed=31)
        big = _grown(small, 8, rng)
        return small, big, SquareRootPower()

    def test_accepts_valid_growth(self):
        small, big, power = self._pair()
        validate_growth(small, power(big)[: small.n], big, power(big))

    def test_rejects_shrinking(self):
        small, big, power = self._pair()
        with pytest.raises(ValueError, match="shrink"):
            validate_growth(big, power(big), small, power(big)[: small.n])

    def test_rejects_changed_prefix(self):
        small, big, power = self._pair()
        mutated = Instance(
            big.metric,
            np.concatenate([[big.senders[1]], big.senders[1:]]),
            big.receivers,
            direction=big.direction,
            alpha=big.alpha,
        )
        with pytest.raises(ValueError, match="prefix"):
            validate_growth(
                small, power(big)[: small.n], mutated, power(mutated)
            )

    def test_rejects_changed_prefix_powers(self):
        small, big, power = self._pair()
        powers = power(big)
        bad = powers.copy()
        bad[0] *= 2.0
        with pytest.raises(ValueError, match="power"):
            validate_growth(small, powers[: small.n], big, bad)

    def test_rejects_different_metric(self):
        small, big, power = self._pair()
        other = random_uniform_instance(big.n, rng=99)
        with pytest.raises(ValueError, match="metric"):
            validate_growth(small, power(big)[: small.n], other,
                            SquareRootPower()(other))
