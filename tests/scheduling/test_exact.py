"""Tests for the exact minimum-coloring solver."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.geometry.line import LineMetric
from repro.instances.random_instances import clustered_instance, random_uniform_instance
from repro.power.oblivious import SquareRootPower, UniformPower
from repro.scheduling.exact import (
    InstanceTooLargeError,
    exact_minimum_colors,
)
from repro.scheduling.firstfit import (
    first_fit_free_power_schedule,
    first_fit_schedule,
)
from repro.scheduling.peeling import peeling_schedule


class TestExactFixedPowers:
    def test_two_far_links_one_color(self, two_link_instance):
        opt, schedule = exact_minimum_colors(two_link_instance, np.ones(2))
        assert opt == 1
        schedule.validate(two_link_instance)

    def test_shared_node_two_colors(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        opt, schedule = exact_minimum_colors(inst, np.ones(2))
        assert opt == 2
        schedule.validate(inst)

    def test_witness_schedule_matches_opt(self, rng):
        inst = clustered_instance(8, cluster_std=2.0, rng=rng)
        powers = SquareRootPower()(inst)
        opt, schedule = exact_minimum_colors(inst, powers)
        schedule.validate(inst)
        assert schedule.num_colors == opt

    def test_heuristics_never_beat_exact(self):
        for seed in range(4):
            inst = clustered_instance(9, cluster_std=3.0, beta=1.0, rng=seed)
            powers = SquareRootPower()(inst)
            opt, _ = exact_minimum_colors(inst, powers)
            ff = first_fit_schedule(inst, powers)
            peel = peeling_schedule(inst, powers)
            assert ff.num_colors >= opt
            assert peel.num_colors >= opt

    def test_heuristics_are_near_optimal_on_small_instances(self):
        gaps = []
        for seed in range(4):
            inst = random_uniform_instance(8, rng=seed)
            powers = SquareRootPower()(inst)
            opt, _ = exact_minimum_colors(inst, powers)
            ff = first_fit_schedule(inst, powers)
            gaps.append(ff.num_colors / opt)
        assert np.mean(gaps) <= 1.5

    def test_uniform_powers_can_cost_more(self):
        # On a dense cluster the uniform OPT is at least the sqrt OPT
        # only sometimes; at minimum both are valid optima.
        inst = clustered_instance(7, cluster_std=1.0, rng=11)
        opt_uniform, _ = exact_minimum_colors(inst, UniformPower()(inst))
        opt_sqrt, _ = exact_minimum_colors(inst, SquareRootPower()(inst))
        assert opt_uniform >= 1 and opt_sqrt >= 1


class TestExactFreePowers:
    def test_free_powers_never_worse_than_fixed(self):
        for seed in range(3):
            inst = clustered_instance(7, cluster_std=2.0, rng=seed)
            powers = SquareRootPower()(inst)
            opt_fixed, _ = exact_minimum_colors(inst, powers)
            opt_free, schedule = exact_minimum_colors(inst)
            schedule.validate(inst)
            assert opt_free <= opt_fixed

    def test_free_power_heuristic_vs_exact(self):
        for seed in range(3):
            inst = random_uniform_instance(7, rng=seed)
            opt, _ = exact_minimum_colors(inst)
            heuristic = first_fit_free_power_schedule(inst)
            assert heuristic.num_colors >= opt

    def test_adversarial_instance_exact_opt_is_one(self):
        from repro.instances.adversarial import adaptive_lower_bound_instance
        from repro.power.oblivious import LinearPower

        adv = adaptive_lower_bound_instance(LinearPower(), 6, kappa=128.0)
        opt_free, _ = exact_minimum_colors(adv.instance)
        assert opt_free == 1
        opt_linear, _ = exact_minimum_colors(
            adv.instance, LinearPower()(adv.instance)
        )
        assert opt_linear == 6


class TestLimits:
    def test_size_cap(self):
        inst = random_uniform_instance(17, rng=0)
        with pytest.raises(InstanceTooLargeError):
            exact_minimum_colors(inst, np.ones(17))
