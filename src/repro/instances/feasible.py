"""Generators for certifiably one-color-feasible instances.

Theorem 2's premise is a request set "for which there is a power
assignment satisfying the bidirectional SINR constraints with only one
color".  To test the theorem literally, this module generates random
instances and *certifies* that premise via power-control feasibility
(growth factor < 1), greedily discarding requests until it holds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.power_control import free_power_spectral_radius
from repro.core.instance import Instance
from repro.instances.random_instances import random_uniform_instance
from repro.util.rng import RngLike, ensure_rng


def one_color_feasible_instance(
    n: int,
    side: Optional[float] = None,
    beta: float = 1.0,
    alpha: float = 3.0,
    margin: float = 1e-2,
    max_attempts: int = 50,
    rng: RngLike = None,
) -> Instance:
    """A random bidirectional instance that is one-color feasible.

    Strategy: sample a random deployment (spreading the area with
    ``n`` so density stays moderate), then greedily drop the most
    constraining requests until the power-control growth factor is
    below ``1 - margin``; re-sample if fewer than ``n`` requests
    survive.  The returned instance has exactly ``n`` requests and a
    certified witness power assignment (via
    :func:`repro.analysis.power_control.free_powers`).

    Raises
    ------
    RuntimeError
        If no attempt produces ``n`` surviving requests (density too
        high for the requested parameters).
    """
    rng = ensure_rng(rng)
    if side is None:
        # Area grows linearly with n: constant density keeps the
        # feasible-fraction roughly stable.
        side = 60.0 * float(np.sqrt(n))
    for _ in range(max_attempts):
        pool = random_uniform_instance(
            2 * n,
            side=side,
            max_link_fraction=0.1,
            alpha=alpha,
            beta=beta,
            rng=rng,
        )
        keep = list(range(pool.n))
        while keep:
            rho = free_power_spectral_radius(pool, keep)
            if rho < 1.0 - margin:
                break
            # Drop the request with the worst pairwise pressure: the
            # one with the largest row sum in the constraint map.
            sub = pool.subset(keep)
            from repro.core.interference import bidirectional_gain_matrices

            gains_u, gains_v = bidirectional_gain_matrices(
                sub, np.ones(sub.n)
            )
            pressure = np.maximum(gains_u, gains_v).sum(axis=1)
            keep.pop(int(np.argmax(pressure)))
        if len(keep) >= n:
            chosen = sorted(keep[:n])
            return pool.subset(chosen)
    raise RuntimeError(
        f"could not build a one-color-feasible instance with n={n} "
        f"after {max_attempts} attempts"
    )
