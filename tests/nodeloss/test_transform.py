"""Tests for the §3.2 pair <-> node reductions."""

import numpy as np
import pytest

from repro.core.instance import Direction, Instance
from repro.geometry.line import LineMetric
from repro.nodeloss.feasibility import nodeloss_interference
from repro.nodeloss.transform import (
    node_gain_from_pair_gain,
    nodeloss_from_pairs,
    pairs_fully_selected,
)
from repro.core.interference import bidirectional_interference


class TestNodeGain:
    def test_formula(self):
        assert node_gain_from_pair_gain(1.0) == pytest.approx(1.0 / 3.0)
        assert node_gain_from_pair_gain(2.0) == pytest.approx(0.5)

    def test_monotone_and_below_one(self):
        gains = [node_gain_from_pair_gain(g) for g in (0.1, 1.0, 10.0, 100.0)]
        assert gains == sorted(gains)
        assert all(g < 1.0 for g in gains)

    def test_invalid(self):
        with pytest.raises(ValueError):
            node_gain_from_pair_gain(0.0)


class TestNodelossFromPairs:
    @pytest.fixture
    def instance(self):
        metric = LineMetric([0.0, 1.0, 10.0, 12.0])
        return Instance.bidirectional(metric, [(0, 1), (2, 3)], alpha=3.0)

    def test_structure(self, instance):
        node_inst, pair_of = nodeloss_from_pairs(instance)
        assert node_inst.m == 4
        assert np.array_equal(pair_of, [0, 0, 1, 1])
        # Both endpoints inherit the pair's link loss.
        assert np.allclose(node_inst.losses, [1.0, 1.0, 8.0, 8.0])

    def test_distances_preserved(self, instance):
        node_inst, _ = nodeloss_from_pairs(instance)
        # node 1 = receiver of pair 0 (coord 1); node 2 = sender of
        # pair 1 (coord 10).
        assert node_inst.distances[1, 2] == pytest.approx(9.0)

    def test_directed_rejected(self, instance):
        directed = instance.with_direction(Direction.DIRECTED)
        with pytest.raises(ValueError, match="bidirectional"):
            nodeloss_from_pairs(directed)

    def test_node_interference_dominates_pair_interference(self, instance):
        """§3.2: I_node(w) >= I_pair(w) for matching powers.

        The node world sums both endpoints of every other pair plus the
        partner, the pair world takes the min-loss endpoint only.
        """
        node_inst, _ = nodeloss_from_pairs(instance)
        pair_powers = np.array([2.0, 3.0])
        node_powers = np.repeat(pair_powers, 2)
        node_interf = nodeloss_interference(node_inst, node_powers)
        pair_interf = bidirectional_interference(instance, pair_powers)
        # Endpoint w of pair i: node interference at node 2i (sender)
        # must dominate the pair-level worst-endpoint interference
        # minus the partner term it includes.
        for pair in range(2):
            worst_node = max(node_interf[2 * pair], node_interf[2 * pair + 1])
            assert worst_node >= pair_interf[pair] - 1e-15


class TestPairsFullySelected:
    def test_both_endpoints_needed(self):
        assert pairs_fully_selected([0, 1, 2], n_pairs=2).tolist() == [0]

    def test_all_selected(self):
        assert pairs_fully_selected([0, 1, 2, 3], n_pairs=2).tolist() == [0, 1]

    def test_none_selected(self):
        assert pairs_fully_selected([0, 2], n_pairs=2).size == 0
