"""E6 — Lemma 5: the star analysis retains a (1 - O((g/g')^{2/3}))
fraction.

Random stars (log-uniform distances and losses) are analysed at target
gains ``gamma = gamma' / s`` for several separation factors ``s``; the
measured retained fraction is compared against the lemma's envelope
``1 - c * (gamma/gamma')^{2/3}``.  Large-loss and small-loss sub-cases
(Lemmas 10 and 11) are also reported separately by constructing stars
that live entirely in one regime.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nodeloss.feasibility import max_feasible_gain
from repro.nodeloss.instance import StarNodeLoss
from repro.nodeloss.star_analysis import (
    lemma5_subset,
    split_large_small,
)
from repro.runner.spec import ExperimentSpec
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def _random_star(
    m: int, rng: np.random.Generator, alpha: float, regime: str
) -> StarNodeLoss:
    """Sample a star in a loss regime: 'mixed', 'small' or 'large'."""
    deltas = np.exp(rng.uniform(0.0, 8.0, size=m))
    decay = deltas**alpha
    if regime == "mixed":
        losses = np.exp(rng.uniform(0.0, np.log(decay.max()), size=m))
    elif regime == "small":
        losses = decay * np.exp(rng.uniform(-6.0, -2.0, size=m))
    elif regime == "large":
        losses = decay * np.exp(rng.uniform(6.0, 10.0, size=m))
    else:
        raise ValueError(f"unknown regime {regime!r}")
    return StarNodeLoss(deltas, losses, alpha=alpha)


def run_star_analysis(
    m: int = 60,
    separations: Sequence[float] = (4.0, 16.0, 64.0, 256.0),
    regimes: Sequence[str] = ("mixed", "small", "large"),
    trials: int = 3,
    alpha: float = 3.0,
    rng: RngLike = 11,
) -> Table:
    """Measure Lemma 5 retained fractions vs the proven envelope."""
    rng = ensure_rng(rng)
    table = Table(
        title="E6: Lemma 5 — star analysis retained fraction",
        columns=[
            "regime",
            "separation",
            "fraction_kept",
            "envelope",
            "gamma_over_gp",
            "large_nodes",
        ],
    )
    table.add_note(
        f"m={m} nodes per star, alpha={alpha}; envelope = 1 - (gamma/gamma')^(2/3); "
        "separation s means gamma = gamma'/s"
    )
    for regime in regimes:
        for separation in separations:
            fractions, ratios, larges = [], [], []
            for child in spawn_rngs(rng, trials):
                star = _random_star(m, child, alpha, regime)
                gamma_prime = max_feasible_gain(star)
                gamma = gamma_prime / separation
                result = lemma5_subset(star, gamma, gamma_prime=gamma_prime)
                large, _ = split_large_small(star, gamma_prime)
                fractions.append(result.fraction_kept)
                ratios.append(gamma / gamma_prime)
                larges.append(large.size)
            ratio = float(np.mean(ratios))
            table.add_row(
                regime=regime,
                separation=separation,
                fraction_kept=float(np.mean(fractions)),
                envelope=max(0.0, 1.0 - ratio ** (2.0 / 3.0)),
                gamma_over_gp=ratio,
                large_nodes=float(np.mean(larges)),
            )
    return table
SPEC = ExperimentSpec(
    id="e6",
    title="Lemma 5 star analysis",
    runner="repro.experiments.e06_star_analysis:run_star_analysis",
    full={"m": 60, "trials": 3},
    fast={"m": 20, "trials": 1},
    seed=11,
    shard_by=None,
    metric="fraction_kept",
)
