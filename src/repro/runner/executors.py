"""Pluggable executors for long-lived *shard actors*.

The orchestrator (:mod:`repro.runner.orchestrator`) fans independent,
run-to-completion shard functions over a ``ProcessPoolExecutor``.  The
distributed data plane (:mod:`repro.distributed`) needs something the
pool cannot express: W long-lived workers, each *owning* state built
once from a per-worker payload (a block-row of the gain matrix, a slice
of protocol requests) and answering many small method calls against it.
:class:`ShardExecutor` names that contract, with two implementations:

* :class:`SerialShardExecutor` — the actors live in the calling
  process.  Zero transport, deterministic by construction; the
  conformance reference and the default for tests.
* :class:`ProcessShardExecutor` — one OS process per worker, speaking a
  length-delimited pickle protocol over a duplex
  :func:`multiprocessing.Pipe`.  A worker that dies mid-call (crash,
  ``SIGKILL``, OOM) is respawned from its original ``(factory,
  payload)`` under a :class:`repro.resilience.RetryPolicy` and the
  in-flight call is replayed — the same self-healing contract the
  PR-8 orchestrator applies to run-to-completion shards, applied here
  to resident actors.

Determinism contract
--------------------

Executors never generate randomness: any seeding must arrive *inside*
the payloads (derive it with
:func:`repro.runner.spec.derive_shard_seed`), so an actor rebuilt after
a crash is bit-identical to the one it replaces and replayed calls
return exactly what the lost call would have.  ``broadcast``/``scatter``
results always come back in worker order regardless of completion
order, mirroring the mergeable-aggregate rule (shard-order concat) of
:func:`repro.runner.spec.merge_tables`.
"""

from __future__ import annotations

import abc
import os
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.resilience import RetryPolicy, ShardFailure

__all__ = [
    "ShardExecutor",
    "SerialShardExecutor",
    "ProcessShardExecutor",
    "ShardExecutorError",
    "SHARD_EXECUTORS",
    "build_shard_executor",
]

#: Registered executor names (see :func:`build_shard_executor`).
SHARD_EXECUTORS = ("serial", "process")

#: Transport errors that mean "the worker process is gone" (as opposed
#: to an exception *inside* the actor method, which is deterministic
#: and therefore never retried).
_TRANSPORT_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError, OSError)


class ShardExecutorError(RuntimeError):
    """A worker could not complete a call.

    ``failure`` carries the structured :class:`repro.resilience.ShardFailure`
    record (worker index in ``shard_index``) for quarantine-style
    reporting.
    """

    def __init__(self, message: str, failure: Optional[ShardFailure] = None):
        super().__init__(message)
        self.failure = failure


class ShardExecutor(abc.ABC):
    """W long-lived actors, one per worker, addressed by method calls.

    Lifecycle: :meth:`start` builds actor ``k`` as ``factory(payloads[k])``;
    :meth:`call`/:meth:`broadcast`/:meth:`scatter` invoke actor methods;
    :meth:`close` tears everything down (idempotent).  Implementations
    must return broadcast/scatter results **in worker order**.
    """

    @property
    @abc.abstractmethod
    def workers(self) -> int:
        """Number of workers (fixed at construction)."""

    @abc.abstractmethod
    def start(
        self, factory: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> None:
        """Build one actor per worker from ``factory(payload)``.

        ``len(payloads)`` must equal :attr:`workers`.  May only be
        called once per executor.
        """

    @abc.abstractmethod
    def call(self, worker: int, method: str, *args: Any) -> Any:
        """Invoke ``actor.<method>(*args)`` on one worker and return
        its result."""

    def broadcast(self, method: str, *args: Any) -> List[Any]:
        """Invoke the same call on every worker; results in worker
        order.  Process implementations overlap the workers' compute."""
        return [self.call(k, method, *args) for k in range(self.workers)]

    def scatter(
        self, method: str, per_worker_args: Sequence[Tuple[Any, ...]]
    ) -> List[Any]:
        """Invoke ``actor.<method>(*per_worker_args[k])`` on worker
        ``k``; results in worker order."""
        if len(per_worker_args) != self.workers:
            raise ValueError(
                f"scatter needs one argument tuple per worker "
                f"({self.workers}), got {len(per_worker_args)}"
            )
        return [
            self.call(k, method, *per_worker_args[k])
            for k in range(self.workers)
        ]

    @abc.abstractmethod
    def close(self) -> None:
        """Tear down all workers (idempotent; safe after failures)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialShardExecutor(ShardExecutor):
    """In-process actors: the conformance reference.

    Every call is a plain method invocation, so a serial run is the
    ground truth a process run must match bit-for-bit (all repro actors
    are deterministic functions of their payload).
    """

    name = "serial"

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = int(workers)
        self._actors: Optional[List[Any]] = None

    @property
    def workers(self) -> int:
        return self._workers

    def start(
        self, factory: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> None:
        if self._actors is not None:
            raise RuntimeError("executor already started")
        if len(payloads) != self._workers:
            raise ValueError(
                f"need one payload per worker ({self._workers}), "
                f"got {len(payloads)}"
            )
        self._actors = [factory(payload) for payload in payloads]

    def call(self, worker: int, method: str, *args: Any) -> Any:
        if self._actors is None:
            raise RuntimeError("executor not started")
        return getattr(self._actors[worker], method)(*args)

    def close(self) -> None:
        self._actors = None


def _pipe_worker_main(conn, factory, payload):  # pragma: no cover - child
    """Child-process loop: build the actor, answer calls until EOF.

    Runs in the worker process (coverage does not see it).  Errors
    raised by actor methods are reported back as ``("err", ...)`` —
    they are deterministic and must surface in the parent, never
    trigger a respawn.
    """
    try:
        actor = factory(payload)
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        try:
            conn.send(("err", type(exc).__name__, f"actor build failed: {exc}"))
        except _TRANSPORT_ERRORS:
            pass
        return
    try:
        conn.send(("ok", None))  # build handshake
    except _TRANSPORT_ERRORS:
        return
    while True:
        try:
            message = conn.recv()
        except _TRANSPORT_ERRORS:
            return
        if message is None:
            return
        method, args = message
        try:
            result = getattr(actor, method)(*args)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            try:
                conn.send(("err", type(exc).__name__, str(exc)))
            except _TRANSPORT_ERRORS:
                return
            continue
        try:
            conn.send(("ok", result))
        except _TRANSPORT_ERRORS:
            return


class ProcessShardExecutor(ShardExecutor):
    """One resident OS process per worker, self-healing under a
    :class:`~repro.resilience.RetryPolicy`.

    Workers are started with the ``spawn`` method (clean interpreter,
    honest per-worker memory accounting — no copy-on-write pages shared
    with the parent) as daemons (they can never outlive the parent).
    A *transport* failure on a call — the pipe breaks because the
    worker crashed or was killed — deterministically rebuilds the actor
    from its original ``(factory, payload)`` and replays the call,
    up to ``retry.max_attempts`` total attempts per call with
    ``retry.delay_before_retry`` backoff between them.  Exceptions
    raised *by the actor method* are re-raised in the parent as
    :class:`ShardExecutorError` without any retry (they are
    deterministic: a replay would fail identically).
    """

    name = "process"

    #: Default self-healing budget per call: the first attempt plus two
    #: respawn-and-replay attempts.
    DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.05)

    def __init__(
        self,
        workers: int,
        retry: Optional[RetryPolicy] = None,
        mp_method: str = "spawn",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        import multiprocessing

        self._workers = int(workers)
        self._retry = self.DEFAULT_RETRY if retry is None else retry
        self._ctx = multiprocessing.get_context(mp_method)
        self._factory: Optional[Callable[[Any], Any]] = None
        self._payloads: Optional[List[Any]] = None
        self._conns: List[Any] = []
        self._procs: List[Any] = []
        self._closed = False

    @property
    def workers(self) -> int:
        return self._workers

    # -- lifecycle -----------------------------------------------------

    def _spawn(self, worker: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pipe_worker_main,
            args=(child_conn, self._factory, self._payloads[worker]),
            daemon=True,
            name=f"repro-shard-{worker}",
        )
        proc.start()
        child_conn.close()
        self._conns[worker] = parent_conn
        self._procs[worker] = proc
        # Build handshake: surfaces pickling/build errors eagerly and
        # guarantees the actor exists before the first real call.
        status = self._recv(worker)
        if status[0] != "ok":
            raise ShardExecutorError(
                f"worker {worker} failed to build its actor: "
                f"{status[1]}: {status[2]}"
            )

    def start(
        self, factory: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> None:
        if self._factory is not None:
            raise RuntimeError("executor already started")
        if len(payloads) != self._workers:
            raise ValueError(
                f"need one payload per worker ({self._workers}), "
                f"got {len(payloads)}"
            )
        self._factory = factory
        self._payloads = list(payloads)
        self._conns = [None] * self._workers
        self._procs = [None] * self._workers
        for worker in range(self._workers):
            self._spawn_with_retry(worker)

    def _spawn_with_retry(self, worker: int) -> None:
        """Bootstrap a worker under the retry policy: a worker that
        dies while *building* (e.g. OOM-killed mid-construction) is
        retried like any other transport failure; deterministic build
        errors surface immediately."""
        policy = self._retry
        failures = 0
        while True:
            try:
                self._spawn(worker)
                return
            except _TRANSPORT_ERRORS as exc:
                failures += 1
                self._reap(worker)
                if failures >= policy.max_attempts:
                    raise ShardExecutorError(
                        f"worker {worker} died while building its actor "
                        f"({failures}/{policy.max_attempts} attempts)",
                        failure=ShardFailure(
                            key="__build__",
                            shard_index=worker,
                            seed=None,
                            error_type=type(exc).__name__,
                            error=str(exc) or "worker process died",
                            attempts=failures,
                        ),
                    ) from exc
                time.sleep(policy.delay_before_retry(failures))

    def _reap(self, worker: int) -> None:
        proc = self._procs[worker]
        conn = self._conns[worker]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=5.0)
        self._conns[worker] = None
        self._procs[worker] = None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker, conn in enumerate(self._conns):
            if conn is None:
                continue
            try:
                conn.send(None)
            except _TRANSPORT_ERRORS:
                pass
        for worker in range(len(self._procs)):
            self._reap(worker)

    # -- calls ---------------------------------------------------------

    def _recv(self, worker: int) -> Any:
        """Receive one reply, polling so a worker that dies without the
        pipe EOFing in the parent (e.g. killed before it fetched its
        fd from the spawn resource sharer) still raises a transport
        error instead of blocking forever."""
        conn = self._conns[worker]
        proc = self._procs[worker]
        while True:
            if conn.poll(0.05):
                return conn.recv()
            if proc is not None and not proc.is_alive():
                if conn.poll(0.0):  # reply raced the death
                    return conn.recv()
                raise EOFError(f"worker {worker} died before replying")

    def _ensure_alive(self, worker: int) -> None:
        if self._conns[worker] is None:
            self._spawn(worker)

    def _attempt(self, worker: int, method: str, args: Tuple[Any, ...]) -> Any:
        """One send/recv attempt; raises a transport error on a dead
        worker, :class:`ShardExecutorError` on an actor exception."""
        self._ensure_alive(worker)
        conn = self._conns[worker]
        conn.send((method, args))
        status = self._recv(worker)
        if status[0] != "ok":
            raise ShardExecutorError(
                f"worker {worker} raised in {method!r}: "
                f"{status[1]}: {status[2]}",
                failure=ShardFailure(
                    key=method,
                    shard_index=worker,
                    seed=None,
                    error_type=status[1],
                    error=status[2],
                    attempts=1,
                ),
            )
        return status[1]

    def _call_with_retry(
        self, worker: int, method: str, args: Tuple[Any, ...]
    ) -> Any:
        if self._factory is None:
            raise RuntimeError("executor not started")
        if self._closed:
            raise RuntimeError("executor is closed")
        policy = self._retry
        failures = 0
        deadline = (
            None
            if policy.deadline is None
            else time.monotonic() + policy.deadline
        )
        while True:
            try:
                return self._attempt(worker, method, args)
            except _TRANSPORT_ERRORS as exc:
                failures += 1
                self._reap(worker)
                out_of_time = (
                    deadline is not None and time.monotonic() >= deadline
                )
                if failures >= policy.max_attempts or out_of_time:
                    raise ShardExecutorError(
                        f"worker {worker} died during {method!r} and the "
                        f"retry budget is exhausted "
                        f"({failures}/{policy.max_attempts} attempts)",
                        failure=ShardFailure(
                            key=method,
                            shard_index=worker,
                            seed=None,
                            error_type=type(exc).__name__,
                            error=str(exc) or "worker process died",
                            attempts=failures,
                        ),
                    ) from exc
                time.sleep(policy.delay_before_retry(failures))

    def call(self, worker: int, method: str, *args: Any) -> Any:
        return self._call_with_retry(worker, method, args)

    def broadcast(self, method: str, *args: Any) -> List[Any]:
        return self.scatter(method, [args] * self._workers)

    def scatter(
        self, method: str, per_worker_args: Sequence[Tuple[Any, ...]]
    ) -> List[Any]:
        """Pipelined fan-out: send every worker its request first, then
        collect replies in worker order — all workers compute
        concurrently while the parent waits.  Workers whose send or
        receive hits a transport failure fall back to the serial
        respawn-and-replay path."""
        if self._factory is None:
            raise RuntimeError("executor not started")
        if self._closed:
            raise RuntimeError("executor is closed")
        if len(per_worker_args) != self._workers:
            raise ValueError(
                f"scatter needs one argument tuple per worker "
                f"({self._workers}), got {len(per_worker_args)}"
            )
        pending: List[bool] = [False] * self._workers
        for worker in range(self._workers):
            conn = self._conns[worker]
            if conn is None:
                continue  # replayed below
            try:
                conn.send((method, tuple(per_worker_args[worker])))
                pending[worker] = True
            except _TRANSPORT_ERRORS:
                self._reap(worker)
        results: List[Any] = [None] * self._workers
        for worker in range(self._workers):
            if pending[worker]:
                try:
                    status = self._recv(worker)
                except _TRANSPORT_ERRORS:
                    self._reap(worker)
                else:
                    if status[0] != "ok":
                        raise ShardExecutorError(
                            f"worker {worker} raised in {method!r}: "
                            f"{status[1]}: {status[2]}",
                            failure=ShardFailure(
                                key=method,
                                shard_index=worker,
                                seed=None,
                                error_type=status[1],
                                error=status[2],
                                attempts=1,
                            ),
                        )
                    results[worker] = status[1]
                    continue
            # Worker lost before or during this round: respawn + replay
            # (counts from a fresh per-call retry budget).
            results[worker] = self._call_with_retry(
                worker, method, tuple(per_worker_args[worker])
            )
        return results

    def worker_pids(self) -> List[int]:
        """Live worker process ids (for fault-injection tests)."""
        return [
            proc.pid if proc is not None else -1 for proc in self._procs
        ]

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def build_shard_executor(
    name: Optional[str],
    workers: int,
    retry: Optional[RetryPolicy] = None,
) -> ShardExecutor:
    """Construct a registered executor by name.

    ``None`` resolves to the process default
    (:func:`repro.core.gains.default_shard_executor`, env
    ``REPRO_SHARD_EXECUTOR``).
    """
    if name is None:
        from repro.core.gains import default_shard_executor

        name = default_shard_executor()
    name = str(name).strip().lower()
    if name == "serial":
        return SerialShardExecutor(workers)
    if name == "process":
        return ProcessShardExecutor(workers, retry=retry)
    raise ValueError(
        f"shard executor must be one of {SHARD_EXECUTORS}, got {name!r}"
    )


def _current_rss_mb() -> float:
    """This process's peak RSS in MiB (actors expose it per worker)."""
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return float(rss_kb) / 1024.0
    except Exception:  # pragma: no cover - non-POSIX fallback
        return float("nan")


def worker_identity() -> dict:
    """Identity/health record of the calling process — actors expose
    this verbatim so tests and benches can observe real process
    boundaries (pid) and per-worker memory (peak RSS)."""
    return {"pid": os.getpid(), "peak_rss_mb": _current_rss_mb()}
