"""Coloring / scheduling algorithms.

* :mod:`~repro.scheduling.trivial` — one color per request (the O(n)
  upper bound the paper's Omega(n) lower bound is matched against).
* :mod:`~repro.scheduling.firstfit` — greedy first-fit coloring under
  a fixed power assignment, plus a free-power variant that uses
  power-control feasibility (the "optimal power assignment" witness).
* :mod:`~repro.scheduling.peeling` — repeated extraction of maximal
  feasible subsets.
* :mod:`~repro.scheduling.gain_scaling` — constructive Propositions 3
  and 4: trade gain for colors.
* :mod:`~repro.scheduling.sqrt_coloring` — the Theorem 15 randomized
  O(log n)-approximation for the square-root assignment (distance
  classes + LP relaxation + randomized rounding).
* :mod:`~repro.scheduling.protocol_model` — a graph-based
  (protocol-model) baseline from the pre-SINR literature.
"""

from repro.scheduling.exact import (
    InstanceTooLargeError,
    exact_minimum_colors,
)
from repro.scheduling.local_search import improve_schedule
from repro.scheduling.distributed import (
    DistributedStats,
    ProtocolStalledError,
    distributed_coloring,
)
from repro.scheduling.firstfit import (
    first_fit_free_power_schedule,
    first_fit_schedule,
)
from repro.scheduling.gain_scaling import (
    densest_subset_at_gain,
    rescale_gain_coloring,
)
from repro.scheduling.peeling import peeling_schedule
from repro.scheduling.protocol_model import (
    protocol_conflict_graph,
    protocol_schedule,
)
from repro.scheduling.sqrt_coloring import SqrtColoringStats, sqrt_coloring
from repro.scheduling.trivial import trivial_schedule

__all__ = [
    "exact_minimum_colors",
    "InstanceTooLargeError",
    "improve_schedule",
    "distributed_coloring",
    "DistributedStats",
    "ProtocolStalledError",
    "trivial_schedule",
    "first_fit_schedule",
    "first_fit_free_power_schedule",
    "peeling_schedule",
    "rescale_gain_coloring",
    "densest_subset_at_gain",
    "sqrt_coloring",
    "SqrtColoringStats",
    "protocol_conflict_graph",
    "protocol_schedule",
]
