"""Block-row sharded gain backend (owner-computes, halo-exchange).

No single worker can hold the O(n²) gain matrix at ``n = 131072``
(dense ``n = 4096`` already costs 2.65 GB), so the ``"sharded"``
backend splits each endpoint matrix into ``W`` contiguous **block
rows** ``G[lo_k:hi_k, :]``.  Worker ``k`` builds its block locally —
the same ε-pruned, tile-assembled CSR the sparse backend uses
(:func:`repro.core.gains._assemble_csr` over
:meth:`repro.geometry.metric.Metric.distance_block` tiles) — so the
full matrix is **never materialized anywhere**, not even sharded: each
worker stores only its pruned CSR strip plus the strip's transpose for
O(row) column slices.

Query protocol (the halo exchange)
----------------------------------

Every :class:`repro.core.gains.GainBackend` primitive decomposes into
per-shard work plus one merge in shard order:

* rows / row-blocks / row-sums — each global row lives in exactly one
  shard, so the parent partitions the row set by owner, every shard
  reduces its own rows, and results scatter back into caller order.
* columns — column ``j`` crosses every shard; one broadcast returns
  each shard's sparse slice ``(local_rows, values)`` and the parent
  scatters them into a dense ``(n,)`` buffer.  Admission asks for the
  same column up to four times (candidate check + placement, both
  endpoints), so fetched columns land in a small parent-side cache and
  :meth:`ShardedBackend.prefetch_columns` fetches a whole admission
  *window* in one round trip (see
  :func:`repro.core.kernels.first_fit_colors_sharded`).
* ``class_sum`` — a local partial reduction per shard (the shard's
  rows against the global color vector) concatenated in shard order:
  an all-reduce whose merge step is a gather, because the reduction
  axis (columns) is fully local to each block row.

Bit-identity contract
---------------------

Per-row values never cross shard boundaries: each shard expands its
CSR rows to dense scratch and reduces them with the same NumPy per-row
pairwise sums as the single-process backends, and ε-pruning is a
per-row rule — so at any ``W`` the assembled results are
**bit-identical** to a :class:`repro.core.gains.SparseBackend` of the
same ``epsilon`` (and, with ``epsilon = 0``, to the dense reference).
The conformance suite asserts this for W ∈ {1, 2, 4, 8}.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gains import (
    DEFAULT_TILE_ROWS,
    GainBackend,
    _assemble_csr,
    _host_gain_targets,
    resolve_shard_executor,
    resolve_shard_workers,
    resolve_sparse_epsilon,
)
from repro.core.instance import Instance
from repro.runner.executors import (
    ShardExecutor,
    build_shard_executor,
    worker_identity,
)

__all__ = ["GainShard", "ShardedBackend", "shard_bounds"]


def shard_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous block-row ranges ``[lo, hi)`` for ``W`` workers.

    Sizes differ by at most one (the first ``n % W`` shards get the
    extra row); with ``W > n`` the tail shards are empty, which every
    query handles (their partial results are zero-length).
    """
    n = int(n)
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    base, extra = divmod(n, workers)
    bounds = []
    lo = 0
    for k in range(workers):
        hi = lo + base + (1 if k < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class GainShard:
    """Worker-side actor owning one block row of each endpoint matrix.

    Built deterministically from its payload (the instance, powers and
    row range), so a crashed worker's replacement — rebuilt by the
    executor from the same payload — holds bit-identical state.
    """

    def __init__(
        self,
        instance: Instance,
        powers: np.ndarray,
        lo: int,
        hi: int,
        epsilon: float,
        tile_rows: int = DEFAULT_TILE_ROWS,
    ):
        self.lo, self.hi = int(lo), int(hi)
        self.n = int(instance.n)
        powers = np.asarray(powers, dtype=float).reshape(-1)
        rows = np.arange(self.lo, self.hi)
        cols = np.arange(self.n)
        tile_rows = max(1, int(tile_rows))
        self.tile_rows = tile_rows
        targets = _host_gain_targets(instance)
        blocks, blocks_t, pruned, has_inf = [], [], [], False
        for nodes in targets:
            csr, pruned_rows, inf_here = _assemble_csr(
                instance, powers, nodes, rows, cols, epsilon, tile_rows
            )
            blocks.append(csr)
            blocks_t.append(csr.T.tocsr())
            pruned.append(pruned_rows)
            has_inf = has_inf or inf_here
        if len(blocks) == 1:  # directed: endpoint v aliases u
            blocks.append(blocks[0])
            blocks_t.append(blocks_t[0])
            pruned.append(pruned[0])
        self._blk = {"u": blocks[0], "v": blocks[1]}
        self._blk_t = {"u": blocks_t[0], "v": blocks_t[1]}
        self._pruned = {"u": pruned[0], "v": pruned[-1]}
        self._has_inf = bool(has_inf)
        self._directed = blocks[1] is blocks[0]

    # -- metadata ------------------------------------------------------

    def meta(self) -> Dict[str, Any]:
        nnz = int(self._blk["u"].nnz)
        nbytes = 0
        seen = set()
        for csr in (*self._blk.values(), *self._blk_t.values()):
            if id(csr) in seen:
                continue
            seen.add(id(csr))
            nbytes += (
                csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
            )
        if not self._directed:
            nnz += int(self._blk["v"].nnz)
        return {
            "lo": self.lo,
            "hi": self.hi,
            "nnz": nnz,
            "nbytes": nbytes,
            "has_inf": self._has_inf,
            "pruned_u": self._pruned["u"],
            "pruned_v": self._pruned["v"],
        }

    def identity(self) -> Dict[str, Any]:
        """Pid + peak RSS of the hosting process (serial executors
        report the parent, by construction)."""
        return worker_identity()

    # -- queries -------------------------------------------------------

    def columns(
        self, js: np.ndarray
    ) -> List[List[Tuple[np.ndarray, np.ndarray]]]:
        """Sparse column slices for each requested ``j``: per endpoint,
        ``(local_row_indices, values)`` of ``G[lo:hi, j]``.  Directed
        shards return the single endpoint once (the parent aliases)."""
        out: List[List[Tuple[np.ndarray, np.ndarray]]] = []
        endpoints = ("u",) if self._directed else ("u", "v")
        for j in np.asarray(js, dtype=int):
            per_endpoint = []
            for endpoint in endpoints:
                blk_t = self._blk_t[endpoint]
                lo, hi = blk_t.indptr[j], blk_t.indptr[j + 1]
                per_endpoint.append(
                    (blk_t.indices[lo:hi].copy(), blk_t.data[lo:hi].copy())
                )
            out.append(per_endpoint)
        return out

    def expand_rows(
        self, local_rows: np.ndarray, cols: Optional[np.ndarray], endpoint: str
    ) -> np.ndarray:
        """Dense ``(len(local_rows), len(cols))`` gather of the shard's
        rows (*cols* ``None`` = all columns)."""
        blk = self._blk[endpoint]
        picked = blk[np.asarray(local_rows, dtype=int)]
        if cols is not None:
            picked = picked[:, np.asarray(cols, dtype=int)]
        return picked.toarray()

    def row_sums(
        self, local_rows: np.ndarray, cols: Optional[np.ndarray], endpoint: str
    ) -> np.ndarray:
        """Tiled per-row sums over *cols* for the shard's rows — dense
        scratch one tile at a time, reduced with the same per-row
        pairwise sums as every other backend (bit-identical)."""
        blk = self._blk[endpoint]
        local_rows = np.asarray(local_rows, dtype=int)
        if cols is not None:
            cols = np.asarray(cols, dtype=int)
        out = np.empty(local_rows.size)
        tile = self.tile_rows
        for lo in range(0, local_rows.size, tile):
            hi = min(lo + tile, local_rows.size)
            picked = blk[local_rows[lo:hi]]
            if cols is not None:
                picked = picked[:, cols]
            out[lo:hi] = picked.toarray().sum(axis=1)
        return out

    def class_sum(
        self, colors: Optional[np.ndarray], endpoint: str
    ) -> np.ndarray:
        """The shard's partial same-color row sums — the local half of
        the all-reduce; the parent concatenates partials in shard
        order.  Matches :meth:`repro.core.gains.SparseBackend._class_sum`
        row for row (global diagonal excluded)."""
        blk = self._blk[endpoint]
        rows = self.hi - self.lo
        if colors is not None:
            colors = np.asarray(colors)
        out = np.empty(rows)
        tile = self.tile_rows
        for lo in range(0, rows, tile):
            hi = min(lo + tile, rows)
            dense_tile = blk[lo:hi].toarray()
            if colors is None:
                out[lo:hi] = dense_tile.sum(axis=1)
                continue
            glo, ghi = self.lo + lo, self.lo + hi
            same = colors[glo:ghi, None] == colors[None, :]
            same[np.arange(ghi - glo), np.arange(glo, ghi)] = False
            out[lo:hi] = np.where(same, dense_tile, 0.0).sum(axis=1)
        return out

    def gather_cols(self, members: np.ndarray, endpoint: str) -> np.ndarray:
        """The shard's row-slice of ``G[:, members]`` — dense
        ``(hi - lo, len(members))``."""
        blk_t = self._blk_t[endpoint]
        return blk_t[np.asarray(members, dtype=int)].toarray().T

    def dense(self, endpoint: str) -> np.ndarray:
        """The full dense block row (materializes O(rows * n))."""
        return self._blk[endpoint].toarray()


def _build_gain_shard(payload: Tuple) -> GainShard:
    """Executor factory: payloads must rebuild actors deterministically
    (the respawn-and-replay contract)."""
    instance, powers, lo, hi, epsilon, tile_rows = payload
    return GainShard(instance, powers, lo, hi, epsilon, tile_rows)


def _close_executor(executor: ShardExecutor) -> None:
    try:
        executor.close()
    except Exception:  # pragma: no cover - teardown best-effort
        pass


class ShardedBackend(GainBackend):
    """The :class:`~repro.core.gains.GainBackend` protocol over ``W``
    block-row shards hosted by a
    :class:`~repro.runner.executors.ShardExecutor`.

    See the module docstring for the decomposition and the bit-identity
    contract.  ``append_requests`` is not supported (growth would
    require a resharding protocol); build a new backend instead.
    """

    name = "sharded"

    #: Parent-side column cache entries (each is O(n) floats per
    #: endpoint).  Sized for a couple of admission windows.
    COLUMN_CACHE_LIMIT = 256

    def __init__(
        self,
        executor: ShardExecutor,
        n: int,
        directed: bool,
        epsilon: float,
        bounds: Sequence[Tuple[int, int]],
        metas: Sequence[Dict[str, Any]],
    ):
        self.flip_risk_events = 0
        self.epsilon = float(epsilon)
        self._executor = executor
        self._n = int(n)
        self._directed = bool(directed)
        self._bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        self._starts = np.array([lo for lo, _ in self._bounds], dtype=int)
        pruned_u = np.concatenate([m["pruned_u"] for m in metas])
        pruned_v = np.concatenate([m["pruned_v"] for m in metas])
        pruned_u.setflags(write=False)
        pruned_v.setflags(write=False)
        self._pruned_u, self._pruned_v = pruned_u, pruned_v
        self._has_inf = any(bool(m["has_inf"]) for m in metas)
        self._nnz = sum(int(m["nnz"]) for m in metas)
        self._nbytes = sum(int(m["nbytes"]) for m in metas)
        self._col_cache: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._finalizer = weakref.finalize(self, _close_executor, executor)

    @classmethod
    def build(
        cls,
        instance: Instance,
        powers: np.ndarray,
        epsilon: Optional[float] = None,
        workers: Optional[int] = None,
        executor: Optional[object] = None,
        retry=None,
        tile_rows: int = DEFAULT_TILE_ROWS,
    ) -> "ShardedBackend":
        """Build ``W`` shards owner-computes style.

        *executor* is either a registered executor name
        (``"serial"``/``"process"``; ``None`` = the process default,
        env ``REPRO_SHARD_EXECUTOR``) or an already-constructed,
        unstarted :class:`~repro.runner.executors.ShardExecutor` whose
        worker count must equal *workers*.  Each worker receives only
        ``(instance, powers, lo, hi, epsilon)`` and builds its block
        row locally — the parent never touches gain values at all.
        """
        epsilon = resolve_sparse_epsilon(epsilon)
        workers = resolve_shard_workers(workers)
        powers = np.asarray(powers, dtype=float).reshape(-1)
        if isinstance(executor, ShardExecutor):
            exec_obj = executor
            if exec_obj.workers != workers:
                raise ValueError(
                    f"executor has {exec_obj.workers} workers, "
                    f"expected {workers}"
                )
        else:
            name = resolve_shard_executor(
                executor if executor is None else str(executor)
            )
            exec_obj = build_shard_executor(name, workers, retry=retry)
        bounds = shard_bounds(instance.n, workers)
        tile_rows = max(1, int(tile_rows))
        payloads = [
            (instance, powers, lo, hi, epsilon, tile_rows)
            for lo, hi in bounds
        ]
        exec_obj.start(_build_gain_shard, payloads)
        metas = exec_obj.broadcast("meta")
        from repro.core.instance import Direction

        return cls(
            executor=exec_obj,
            n=instance.n,
            directed=instance.direction is Direction.DIRECTED,
            epsilon=epsilon,
            bounds=bounds,
            metas=metas,
        )

    # -- lifecycle -----------------------------------------------------

    @property
    def executor(self) -> ShardExecutor:
        """The hosting executor (for health queries / fault tests)."""
        return self._executor

    def close(self) -> None:
        """Tear down the worker fleet (idempotent; also runs when the
        backend is garbage-collected, e.g. on context-cache eviction)."""
        self._finalizer()

    # -- shape / bookkeeping -------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def has_infinite_gains(self) -> bool:
        return self._has_inf

    @property
    def pruned_mass_u(self) -> np.ndarray:
        return self._pruned_u

    @property
    def pruned_mass_v(self) -> np.ndarray:
        return self._pruned_v

    @property
    def workers(self) -> int:
        return self._executor.workers

    # -- column cache / halo fetch -------------------------------------

    def prefetch_columns(self, js: np.ndarray) -> None:
        """Fetch the columns of every request in *js* (both endpoints)
        in **one** round trip over the shards and cache them.

        The sharded first-fit driver calls this once per admission
        window; the per-request :meth:`col_u`/:meth:`col_v` hits are
        then parent-local, so a window of B admissions costs one
        round trip instead of up to ``4 B``.
        """
        js = np.asarray(js, dtype=int)
        missing = np.array(
            [j for j in js if int(j) not in self._col_cache], dtype=int
        )
        if missing.size == 0:
            return
        parts = self._executor.broadcast("columns", missing)
        for pos, j in enumerate(missing):
            col_u = np.zeros(self._n)
            col_v = col_u if self._directed else np.zeros(self._n)
            for worker, (lo, _hi) in enumerate(self._bounds):
                slices = parts[worker][pos]
                idx, vals = slices[0]
                col_u[lo + idx] = vals
                if not self._directed:
                    idx, vals = slices[1]
                    col_v[lo + idx] = vals
            col_u.setflags(write=False)
            col_v.setflags(write=False)
            self._cache_put(int(j), (col_u, col_v))

    def _cache_put(
        self, j: int, cols: Tuple[np.ndarray, np.ndarray]
    ) -> None:
        cache = self._col_cache
        cache[j] = cols
        cache.move_to_end(j)
        while len(cache) > self.COLUMN_CACHE_LIMIT:
            cache.popitem(last=False)

    def _cached_cols(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        j = int(j)
        entry = self._col_cache.get(j)
        if entry is None:
            self.prefetch_columns(np.array([j]))
            entry = self._col_cache[j]
        else:
            self._col_cache.move_to_end(j)
        return entry

    # -- primitives ----------------------------------------------------

    def col_u(self, j: int) -> np.ndarray:
        return self._cached_cols(j)[0]

    def col_v(self, j: int) -> np.ndarray:
        return self._cached_cols(j)[1]

    def _owner(self, i: int) -> int:
        return int(np.searchsorted(self._starts, i, side="right") - 1)

    def row_u(self, i: int) -> np.ndarray:
        return self._row("u", int(i))

    def row_v(self, i: int) -> np.ndarray:
        return self._row("v", int(i))

    def _row(self, endpoint: str, i: int) -> np.ndarray:
        worker = self._owner(i)
        lo = self._bounds[worker][0]
        block = self._executor.call(
            worker, "expand_rows", np.array([i - lo]), None, endpoint
        )
        return np.asarray(block)[0]

    def _partition_rows(
        self, rows: np.ndarray
    ) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        """Group *rows* by owning shard: ``(worker, positions_in_rows,
        local_row_indices)`` for every shard that owns at least one."""
        rows = np.asarray(rows, dtype=int)
        owners = np.searchsorted(self._starts, rows, side="right") - 1
        groups = []
        for worker in np.unique(owners):
            positions = np.flatnonzero(owners == worker)
            lo = self._bounds[int(worker)][0]
            groups.append((int(worker), positions, rows[positions] - lo))
        return groups

    def _scatter_rows(
        self, endpoint: str, method: str, rows: np.ndarray,
        cols: Optional[np.ndarray], width: Optional[int],
    ) -> np.ndarray:
        """Run a per-shard row computation and scatter the results back
        into caller row order."""
        rows = np.asarray(rows, dtype=int)
        groups = self._partition_rows(rows)
        if width is None:
            out = np.empty(rows.size)
        else:
            out = np.empty((rows.size, width))
        if len(groups) == 1:
            worker, positions, local = groups[0]
            out[positions] = self._executor.call(
                worker, method, local, cols, endpoint
            )
            return out
        args: List[Tuple] = [(np.empty(0, dtype=int), cols, endpoint)] * (
            self._executor.workers
        )
        for worker, _positions, local in groups:
            args[worker] = (local, cols, endpoint)
        parts = self._executor.scatter(method, args)
        for worker, positions, _local in groups:
            out[positions] = parts[worker]
        return out

    def gather_cols_u(self, members: np.ndarray) -> np.ndarray:
        return self._gather_cols("u", members)

    def gather_cols_v(self, members: np.ndarray) -> np.ndarray:
        return self._gather_cols("v", members)

    def _gather_cols(self, endpoint: str, members: np.ndarray) -> np.ndarray:
        members = np.asarray(members, dtype=int)
        parts = self._executor.broadcast("gather_cols", members, endpoint)
        return np.concatenate([np.asarray(part) for part in parts], axis=0)

    def block_u(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=int)
        return self._scatter_rows("u", "expand_rows", idx, idx, idx.size)

    def block_v(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=int)
        return self._scatter_rows("v", "expand_rows", idx, idx, idx.size)

    def cross_block_u(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        cols = np.asarray(cols, dtype=int)
        return self._scatter_rows("u", "expand_rows", rows, cols, cols.size)

    def cross_block_v(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        cols = np.asarray(cols, dtype=int)
        return self._scatter_rows("v", "expand_rows", rows, cols, cols.size)

    def row_sums_u(
        self, rows: np.ndarray, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = rows if cols is None else np.asarray(cols, dtype=int)
        return self._scatter_rows("u", "row_sums", rows, cols, None)

    def row_sums_v(
        self, rows: np.ndarray, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = rows if cols is None else np.asarray(cols, dtype=int)
        return self._scatter_rows("v", "row_sums", rows, cols, None)

    def class_sum_u(self, colors: Optional[np.ndarray]) -> np.ndarray:
        return self._class_sum("u", colors)

    def class_sum_v(self, colors: Optional[np.ndarray]) -> np.ndarray:
        return self._class_sum("v", colors)

    def _class_sum(
        self, endpoint: str, colors: Optional[np.ndarray]
    ) -> np.ndarray:
        if colors is not None:
            colors = np.asarray(colors)
        parts = self._executor.broadcast("class_sum", colors, endpoint)
        return np.concatenate([np.asarray(part) for part in parts])

    def dense_u(self) -> np.ndarray:
        return self._dense("u")

    def dense_v(self) -> np.ndarray:
        return self._dense("v")

    def _dense(self, endpoint: str) -> np.ndarray:
        parts = self._executor.broadcast("dense", endpoint)
        return np.concatenate([np.asarray(part) for part in parts], axis=0)

    def dense_ut(self) -> np.ndarray:
        return np.ascontiguousarray(self.dense_u().T)

    def dense_vt(self) -> np.ndarray:
        return np.ascontiguousarray(self.dense_v().T)

    # -- stats / health ------------------------------------------------

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def worker_health(self) -> List[Dict[str, Any]]:
        """Pid + peak RSS per worker (one broadcast)."""
        return self._executor.broadcast("identity")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedBackend(n={self.n}, directed={self.directed}, "
            f"workers={self.workers}, epsilon={self.epsilon}, "
            f"density={self.density:.4f})"
        )
