#!/usr/bin/env python
"""The §6 open problem, live: distributed coloring by random access.

Runs the slotted random-access protocol (square-root powers +
multiplicative backoff) against centralized first-fit on the same
instance, and prints the price of distribution: extra colors, idle and
collision slots, attempts per success.

Run:  python examples/distributed_protocol.py [n] [seed]
"""

import sys

from repro import Problem, clustered_instance


def main(n: int = 25, seed: int = 0) -> None:
    instance = clustered_instance(n, beta=0.8, rng=seed)
    session = Problem(instance).session()  # square-root powers by default

    central = session.schedule("first_fit").validate()
    print(f"centralized first-fit : {central.num_colors} colors")

    for policy in ("fixed", "backoff"):
        result = session.schedule("distributed", policy=policy, rng=seed)
        schedule, stats = result.validate().schedule, result.stats
        print(f"\ndistributed ({policy})")
        print(f"  colors (successful slots): {schedule.num_colors}")
        print(f"  protocol slots            : {stats.slots} "
              f"({stats.idle_slots} idle, {stats.collision_slots} collisions)")
        print(f"  attempts per success      : {stats.attempts_per_success:.2f}")
        print(f"  successes per slot        : {stats.successes_per_slot}")

    print("\nThe paper asks whether a distributed procedure can match the")
    print("centralized O(log n) guarantee; the measured gap above is what")
    print("such a procedure would need to close.")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 25,
        int(sys.argv[2]) if len(sys.argv) > 2 else 0,
    )
