"""Tests for the affectance layer."""

import numpy as np
import pytest

from repro.analysis.affectance import (
    affectance_matrix,
    fixed_power_conflict_bound,
    max_average_affectance,
    total_affectance,
)
from repro.core.feasibility import feasible_subset_mask
from repro.core.instance import Instance
from repro.geometry.line import LineMetric
from repro.power.oblivious import SquareRootPower


class TestAffectanceMatrix:
    def test_hand_computed_directed(self, two_link_directed):
        matrix = affectance_matrix(two_link_directed, np.ones(2))
        # A[0,1] = beta * (p1/l(u1,v0)) / (p0/l0) = (1/99^3) / 1.
        assert matrix[0, 1] == pytest.approx(1.0 / 99.0**3)
        assert matrix[1, 0] == pytest.approx(1.0 / 101.0**3)
        assert matrix[0, 0] == 0.0

    def test_beta_scales_affectance(self, two_link_instance):
        base = affectance_matrix(two_link_instance, np.ones(2), beta=1.0)
        double = affectance_matrix(two_link_instance, np.ones(2), beta=2.0)
        assert np.allclose(double, 2 * base)

    def test_cap(self):
        metric = LineMetric([0.0, 10.0, 1.0, 11.0])
        inst = Instance.directed(metric, [(0, 1), (2, 3)])
        raw = affectance_matrix(inst, np.ones(2), capped=False)
        capped = affectance_matrix(inst, np.ones(2), capped=True)
        assert raw.max() > 1.0
        assert capped.max() <= 1.0

    def test_feasibility_iff_total_below_one(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        totals = total_affectance(small_random_instance, powers)
        mask = feasible_subset_mask(
            small_random_instance, powers, list(range(small_random_instance.n))
        )
        assert np.array_equal(mask, totals <= 1.0 + 1e-9)

    def test_subset_totals(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        sub = total_affectance(small_random_instance, powers, subset=[0, 1])
        assert sub.shape == (2,)


class TestAffectanceStatistics:
    def test_max_average_in_unit_interval(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        value = max_average_affectance(small_random_instance, powers)
        assert 0.0 <= value <= 1.0

    def test_single_request_zero(self):
        metric = LineMetric([0.0, 1.0])
        inst = Instance.bidirectional(metric, [(0, 1)])
        assert max_average_affectance(inst, np.ones(1)) == 0.0


class TestFixedPowerConflictBound:
    def test_far_links_bound_one(self, two_link_instance):
        assert fixed_power_conflict_bound(two_link_instance, np.ones(2)) == 1

    def test_interleaved_links_conflict(self):
        metric = LineMetric([0.0, 10.0, 1.0, 11.0, 2.0, 12.0])
        inst = Instance.directed(metric, [(0, 1), (2, 3), (4, 5)])
        assert fixed_power_conflict_bound(inst, np.ones(3)) >= 2

    def test_bound_is_sound(self, small_random_instance):
        from repro.scheduling.firstfit import first_fit_schedule

        powers = SquareRootPower()(small_random_instance)
        bound = fixed_power_conflict_bound(small_random_instance, powers)
        schedule = first_fit_schedule(small_random_instance, powers)
        assert bound <= schedule.num_colors
