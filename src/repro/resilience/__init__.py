"""Fault-tolerant execution primitives.

``repro.resilience`` holds the policy and fault-injection layer the
execution front-ends (:mod:`repro.runner` and :mod:`repro.serve`) share:

* :class:`RetryPolicy` — per-shard retry-with-exponential-backoff and
  result-deadline policy for the orchestrator.  The default
  (``max_attempts=1``) preserves the historical fail-fast behavior.
* :class:`ShardFailure` — the structured record a quarantined shard
  leaves in its experiment's :class:`~repro.runner.artifacts.BenchReport`
  instead of aborting sibling experiments.
* :class:`FaultPlan` / :class:`FaultSpec` — a deterministic, seedable
  fault-injection harness.  Plans are activated through explicit
  injection points (the orchestrator's shard execution and checkpoint
  loop, the serve worker's admission path and
  :meth:`repro.api.Session.add_requests`), so every retry, quarantine,
  resume and rollback path is exercised by *injected* faults in the test
  suite rather than assumed.

Nothing in this package is imported on any hot path unless a policy or
plan is actually supplied.
"""

from repro.resilience.faults import (
    FAULT_KILL_EXIT,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.resilience.policy import RetryPolicy, ShardFailure

__all__ = [
    "FAULT_KILL_EXIT",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "ShardFailure",
]
