"""Local-search schedule improvement.

A post-processing pass applicable to any fixed-power schedule: try to
*empty the smallest color class* by reassigning each of its members
into some other class that still satisfies every SINR constraint; on
success the color disappears.  Repeats until a fixed point.

The pass never increases the number of colors and never breaks
feasibility, so it composes with every scheduler in this package
(first-fit, peeling, LP pipeline, distributed protocol output).

Move checks run, by default, as
:class:`repro.core.kernels.ScheduleKernel` delta checks: the kernel
keeps every class's interference state dense, so testing a move costs
one vectorized pass (candidate margin against each class plus every
member's margin with the candidate's gain column added) instead of
rebuilding and re-validating the target subset from scratch, and a
failed dissolution rolls back via an exact (bitwise) state snapshot.
Under :func:`repro.core.kernels.kernels_disabled` — or with the engine
off entirely — moves fall back to the subset-rebuild checks, with the
per-target member lists hoisted per dissolution attempt instead of
recomputed per (member, target) pair.  Kernel delta checks agree with
the rebuild path up to floating-point accumulation order (the
:class:`~repro.core.context.ClassAccumulator` contract, ~1e-16
relative); the emitted colorings are asserted equal on the conformance
grid in ``tests/core/test_kernels.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.context import InterferenceContext, maybe_context
from repro.core.feasibility import is_feasible_subset
from repro.core.instance import Instance
from repro.core.kernels import ScheduleKernel, kernels_enabled
from repro.core.schedule import Schedule, build_schedule


def _subset_feasible(
    instance: Instance,
    context: Optional[InterferenceContext],
    powers: np.ndarray,
    subset: np.ndarray,
    beta: Optional[float],
) -> bool:
    if context is not None:
        return context.is_feasible_subset(subset, beta=beta)
    return is_feasible_subset(instance, powers, subset, beta=beta)


def _try_empty_class(
    instance: Instance,
    context: Optional[InterferenceContext],
    colors: np.ndarray,
    powers: np.ndarray,
    victim: int,
    beta: Optional[float],
) -> bool:
    """Subset-rebuild fallback: dissolve color class *victim* by moving
    its members, re-validating each trial subset from scratch.

    Moves are committed member by member; on the first stuck member,
    every prior move is rolled back (all-or-nothing semantics keep the
    invariant simple and the result a strict improvement).  Per-target
    member lists are hoisted once per attempt and maintained in sorted
    order as moves commit, so each trial costs one append instead of a
    fresh ``np.flatnonzero`` scan.
    """
    members = np.flatnonzero(colors == victim)
    snapshot = colors.copy()
    targets = [c for c in np.unique(colors) if c != victim]
    target_members = {c: np.flatnonzero(colors == c) for c in targets}
    for request in members:
        placed = False
        for target in targets:
            trial = np.append(target_members[target], request)
            if _subset_feasible(instance, context, powers, trial, beta=beta):
                colors[request] = target
                current = target_members[target]
                target_members[target] = np.insert(
                    current, np.searchsorted(current, request), request
                )
                placed = True
                break
        if not placed:
            colors[:] = snapshot
            return False
    return True


def _try_empty_class_kernel(
    kernel: ScheduleKernel, victim: int
) -> bool:
    """Kernel path: dissolve *victim* with vectorized delta checks.

    One :meth:`ScheduleKernel.admissible_targets` pass per member
    scores every potential target class at once; failed attempts
    restore the pre-attempt state bitwise from a snapshot.
    """
    members = np.flatnonzero(kernel.colors == victim)
    snapshot = kernel.snapshot()
    targets = [int(c) for c in np.unique(kernel.colors) if c != victim]
    for request in members:
        admissible = kernel.admissible_targets(int(request))
        placed = False
        for target in targets:
            if admissible[target]:
                kernel.move(int(request), target)
                placed = True
                break
        if not placed:
            kernel.restore(snapshot)
            return False
    return True


def improve_schedule(
    instance: Instance,
    schedule: Schedule,
    beta: Optional[float] = None,
    max_rounds: Optional[int] = None,
) -> Schedule:
    """Reduce *schedule*'s colors by dissolving small classes.

    Parameters
    ----------
    schedule:
        A feasible fixed-power schedule (validated before and after).
    max_rounds:
        Cap on dissolution attempts (defaults to the color count).

    Returns
    -------
    Schedule
        A feasible schedule with at most as many colors; powers are
        unchanged.
    """
    schedule.validate(instance, beta=beta)
    colors = schedule.compacted().colors.copy()
    powers = schedule.powers
    context = maybe_context(instance, powers)
    kernel: Optional[ScheduleKernel] = None
    if context is not None and kernels_enabled():
        kernel = ScheduleKernel.from_colors(context, colors, beta=beta)
    if max_rounds is None:
        max_rounds = int(np.unique(colors).size)

    for _ in range(max_rounds):
        current = kernel.colors if kernel is not None else colors
        sizes = {c: int(np.sum(current == c)) for c in np.unique(current)}
        if len(sizes) <= 1:
            break
        # Try victims from the smallest class upward; stop the round at
        # the first success (classes change) or give up entirely.
        dissolved = False
        for victim in sorted(sizes, key=lambda c: (sizes[c], c)):
            if kernel is not None:
                dissolved = _try_empty_class_kernel(kernel, int(victim))
            else:
                dissolved = _try_empty_class(
                    instance, context, colors, powers, victim, beta
                )
            if dissolved:
                break
        if not dissolved:
            break
        # Re-compact so color ids stay dense.
        if kernel is not None:
            kernel.drop_empty_class(int(victim))
        else:
            _, colors = np.unique(colors, return_inverse=True)

    final = kernel.colors if kernel is not None else colors
    improved = build_schedule(final, powers)
    improved.validate(instance, beta=beta)
    return improved
