"""Tests for first-fit and peeling schedulers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.geometry.line import LineMetric
from repro.instances.random_instances import clustered_instance, random_uniform_instance
from repro.power.oblivious import SquareRootPower, UniformPower
from repro.scheduling.firstfit import (
    first_fit_free_power_schedule,
    first_fit_schedule,
)
from repro.scheduling.peeling import peeling_schedule
from repro.scheduling.trivial import trivial_schedule


class TestFirstFit:
    def test_far_links_share_color(self, two_link_instance):
        sched = first_fit_schedule(two_link_instance, np.ones(2))
        assert sched.num_colors == 1
        sched.validate(two_link_instance)

    def test_shared_node_forces_split(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        sched = first_fit_schedule(inst, np.ones(2))
        assert sched.num_colors == 2
        sched.validate(inst)

    def test_always_feasible_on_random(self, rng):
        for seed in range(5):
            inst = random_uniform_instance(15, rng=seed)
            powers = SquareRootPower()(inst)
            sched = first_fit_schedule(inst, powers)
            sched.validate(inst)

    def test_never_more_colors_than_requests(self, small_random_instance):
        powers = UniformPower()(small_random_instance)
        sched = first_fit_schedule(small_random_instance, powers)
        assert sched.num_colors <= small_random_instance.n

    def test_custom_order_respected(self, two_link_instance):
        sched = first_fit_schedule(two_link_instance, np.ones(2), order=[1, 0])
        sched.validate(two_link_instance)

    def test_stricter_beta_needs_more_colors(self, rng):
        inst = clustered_instance(20, beta=0.5, rng=rng)
        powers = SquareRootPower()(inst)
        loose = first_fit_schedule(inst, powers, beta=0.5)
        strict = first_fit_schedule(inst, powers, beta=8.0)
        assert strict.num_colors >= loose.num_colors
        strict.validate(inst, beta=8.0)

    def test_colors_are_contiguous_from_zero(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        sched = first_fit_schedule(small_random_instance, powers)
        used = np.unique(sched.colors)
        assert np.array_equal(used, np.arange(used.size))


class TestFirstFitFreePower:
    def test_feasible_on_random(self, small_random_instance):
        sched = first_fit_free_power_schedule(small_random_instance)
        sched.validate(small_random_instance)

    def test_at_most_fixed_power_colors(self, rng):
        # Free powers dominate any fixed assignment up to greedy noise;
        # verify on instances where the gap is structural.
        from repro.instances.adversarial import growing_chain_instance

        adv = growing_chain_instance(12)
        fixed = first_fit_schedule(adv.instance, UniformPower()(adv.instance))
        free = first_fit_free_power_schedule(adv.instance)
        assert free.num_colors < fixed.num_colors

    def test_shared_node_split(self):
        metric = LineMetric([0.0, 1.0, 2.0])
        inst = Instance.bidirectional(metric, [(0, 1), (1, 2)])
        sched = first_fit_free_power_schedule(inst)
        assert sched.num_colors == 2
        sched.validate(inst)


class TestPeeling:
    def test_feasible(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        sched = peeling_schedule(small_random_instance, powers)
        sched.validate(small_random_instance)

    def test_covers_all_requests(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        sched = peeling_schedule(small_random_instance, powers)
        assert np.all(sched.colors >= 0)

    def test_no_worse_than_trivial(self, rng):
        inst = clustered_instance(15, rng=rng)
        powers = SquareRootPower()(inst)
        peel = peeling_schedule(inst, powers)
        assert peel.num_colors <= inst.n


class TestTrivial:
    def test_one_color_per_request(self, small_random_instance):
        sched = trivial_schedule(small_random_instance)
        assert sched.num_colors == small_random_instance.n
        sched.validate(small_random_instance)

    def test_custom_power(self, small_random_instance):
        sched = trivial_schedule(small_random_instance, power=UniformPower())
        assert np.allclose(sched.powers, 1.0)


class TestSchedulersProperty:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_all_schedulers_emit_feasible_schedules(self, seed):
        inst = random_uniform_instance(8, rng=seed)
        powers = SquareRootPower()(inst)
        for schedule in (
            first_fit_schedule(inst, powers),
            peeling_schedule(inst, powers),
            trivial_schedule(inst),
            first_fit_free_power_schedule(inst),
        ):
            schedule.validate(inst)
