"""Shortest-path metric of an edge-weighted tree.

Tree metrics are the intermediate stop of the Theorem 2 pipeline: the
general metric is simulated by an ensemble of trees (Lemma 6), which
are then decomposed into stars (Lemma 9).  This class supports both
steps: it exposes the tree structure (for centroid decomposition) and
the induced metric (for feasibility checks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.metric import Metric
from repro.util.validation import check_index

Edge = Tuple[int, int, float]


class TreeMetric(Metric):
    """The shortest-path metric of an edge-weighted tree on ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes, labelled ``0 .. n-1``.
    edges:
        Iterable of ``(u, v, weight)`` with positive weights.  Exactly
        ``n - 1`` edges forming a single connected tree are required.
    """

    def __init__(self, n: int, edges: Iterable[Edge]):
        super().__init__()
        if n <= 0:
            raise ValueError("tree must have at least one node")
        self._n = int(n)
        edge_list: List[Edge] = []
        adjacency: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for u, v, w in edges:
            u = check_index(u, n, "edge endpoint u")
            v = check_index(v, n, "edge endpoint v")
            w = float(w)
            if u == v:
                raise ValueError(f"self-loop at node {u}")
            if not w > 0:
                raise ValueError(f"edge weight must be > 0, got {w}")
            edge_list.append((u, v, w))
            adjacency[u].append((v, w))
            adjacency[v].append((u, w))
        if len(edge_list) != n - 1:
            raise ValueError(f"a tree on {n} nodes needs {n - 1} edges, got {len(edge_list)}")
        self._edges = edge_list
        self._adjacency = adjacency
        self._check_connected()

    def _check_connected(self) -> None:
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            node = stack.pop()
            for neighbor, _ in self._adjacency[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    count += 1
                    stack.append(neighbor)
        if count != self._n:
            raise ValueError("edges do not form a connected tree")

    @property
    def n(self) -> int:
        return self._n

    @property
    def edges(self) -> List[Edge]:
        """The edge list ``(u, v, weight)``."""
        return list(self._edges)

    def neighbors(self, node: int) -> List[Tuple[int, float]]:
        """Adjacent ``(neighbor, weight)`` pairs of *node*."""
        node = check_index(node, self._n, "node")
        return list(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Number of tree neighbours of *node*."""
        node = check_index(node, self._n, "node")
        return len(self._adjacency[node])

    def _distances_from(self, source: int) -> np.ndarray:
        dist = np.full(self._n, np.inf)
        dist[source] = 0.0
        stack = [source]
        while stack:
            node = stack.pop()
            for neighbor, weight in self._adjacency[node]:
                if np.isinf(dist[neighbor]):
                    dist[neighbor] = dist[node] + weight
                    stack.append(neighbor)
        return dist

    def _compute_matrix(self) -> np.ndarray:
        matrix = np.empty((self._n, self._n))
        for source in range(self._n):
            matrix[source] = self._distances_from(source)
        return matrix

    def subtree_nodes_after_removal(self, center: int) -> List[List[int]]:
        """Connected components of the forest obtained by deleting *center*.

        Used by the centroid decomposition of Lemma 9: removing the
        centroid splits the tree into subtrees of size <= n/2.
        """
        center = check_index(center, self._n, "center")
        seen = [False] * self._n
        seen[center] = True
        components: List[List[int]] = []
        for start, _ in self._adjacency[center]:
            if seen[start]:
                continue
            component = []
            stack = [start]
            seen[start] = True
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbor, _ in self._adjacency[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        stack.append(neighbor)
            components.append(component)
        return components


def find_centroid(tree: TreeMetric, nodes: Optional[Sequence[int]] = None) -> int:
    """Find a centroid of *tree* (restricted to the subtree on *nodes*).

    A centroid is a node whose removal leaves components of size at most
    half of the (sub)tree — the paper uses "a node c such that the
    removal of c partitions the tree into disjoint sub-trees with size
    at most n/2.  Such a node can be found in any tree." (§3.4).

    Parameters
    ----------
    tree:
        The host tree.
    nodes:
        Optional subset of node indices inducing a connected subtree;
        defaults to all nodes.
    """
    if nodes is None:
        members = list(range(tree.n))
    else:
        members = [check_index(v, tree.n, "node") for v in nodes]
    if not members:
        raise ValueError("cannot take centroid of an empty subtree")
    member_set = set(members)
    size = len(members)

    # Iterative post-order subtree-size computation rooted at members[0].
    root = members[0]
    subtree_size: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {root: None}
    order: List[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbor, _ in tree.neighbors(node):
            if neighbor in member_set and neighbor not in parent:
                parent[neighbor] = node
                stack.append(neighbor)
    if len(order) != size:
        raise ValueError("nodes do not induce a connected subtree")
    for node in reversed(order):
        total = 1
        for neighbor, _ in tree.neighbors(node):
            if neighbor in member_set and parent.get(neighbor) == node:
                total += subtree_size[neighbor]
        subtree_size[node] = total

    best_node = root
    best_max = size + 1
    for node in order:
        largest = size - subtree_size[node]
        for neighbor, _ in tree.neighbors(node):
            if neighbor in member_set and parent.get(neighbor) == node:
                largest = max(largest, subtree_size[neighbor])
        if largest < best_max:
            best_max = largest
            best_node = node
    return best_node
