"""E4 — Theorem 15: the LP coloring algorithm and its approximation.

Compares, under the square-root assignment, the LP-based Section 5
algorithm, its greedy variant, plain first-fit, peeling and the
trivial schedule, against a certified lower bound on OPT.  Expected
shape: the measured approximation factor (colors / lower bound) grows
at most logarithmically in ``n``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.bounds import opt_color_lower_bound
from repro.experiments.e03_sqrt_universal import InstanceFactory, default_families
from repro.power.oblivious import SquareRootPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def run_coloring_algorithm(
    n_values: Sequence[int] = (10, 20, 40),
    families: Optional[Dict[str, InstanceFactory]] = None,
    trials: int = 3,
    rng: RngLike = 99,
) -> Table:
    """Compare coloring algorithms for the square-root assignment."""
    if families is None:
        families = default_families()
    rng = ensure_rng(rng)
    table = Table(
        title="E4: Theorem 15 — coloring algorithms under the sqrt assignment",
        columns=[
            "family",
            "n",
            "lp",
            "greedy_sweep",
            "first_fit",
            "peeling",
            "trivial",
            "opt_lb",
            "approx_factor",
            "log2n",
        ],
    )
    table.add_note(
        "approx_factor = best measured colors / certified OPT lower bound"
    )
    for family_name, factory in families.items():
        for n in n_values:
            results = {key: [] for key in ("lp", "greedy", "ff", "peel", "triv", "lb")}
            for child in spawn_rngs(rng, trials):
                instance = factory(n, child)
                powers = SquareRootPower()(instance)
                sched_lp = run_algorithm(
                    "sqrt_coloring", instance, rng=child, use_lp=True
                ).schedule
                sched_lp.validate(instance)
                sched_greedy = run_algorithm(
                    "sqrt_coloring", instance, rng=child, use_lp=False
                ).schedule
                sched_greedy.validate(instance)
                sched_ff = run_algorithm(
                    "first_fit", instance, powers=powers
                ).schedule
                sched_ff.validate(instance)
                sched_peel = run_algorithm(
                    "peeling", instance, powers=powers
                ).schedule
                sched_peel.validate(instance)
                sched_triv = run_algorithm("trivial", instance).schedule
                sched_triv.validate(instance)
                results["lp"].append(sched_lp.num_colors)
                results["greedy"].append(sched_greedy.num_colors)
                results["ff"].append(sched_ff.num_colors)
                results["peel"].append(sched_peel.num_colors)
                results["triv"].append(sched_triv.num_colors)
                results["lb"].append(opt_color_lower_bound(instance))
            best = min(
                float(np.mean(results[key])) for key in ("lp", "greedy", "ff", "peel")
            )
            lower = max(1.0, float(np.mean(results["lb"])))
            table.add_row(
                family=family_name,
                n=n,
                lp=float(np.mean(results["lp"])),
                greedy_sweep=float(np.mean(results["greedy"])),
                first_fit=float(np.mean(results["ff"])),
                peeling=float(np.mean(results["peel"])),
                trivial=float(np.mean(results["triv"])),
                opt_lb=lower,
                approx_factor=best / lower,
                log2n=math.log2(n),
            )
    return table
SPEC = ExperimentSpec(
    id="e4",
    title="Theorem 15 coloring algorithms",
    runner="repro.experiments.e04_coloring_algorithm:run_coloring_algorithm",
    full={"n_values": (10, 20, 40), "trials": 2},
    fast={"n_values": (8,), "trials": 1},
    seed=99,
    shard_by="n_values",
    metric="approx_factor",
    algorithms=("sqrt_coloring", "first_fit", "peeling", "trivial"),
)
