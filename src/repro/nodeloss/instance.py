"""Node-loss scheduling instances (§3.2).

A :class:`NodeLossInstance` is a set of nodes in a metric space, each
carrying a *loss parameter* ``l_i`` that remembers the link loss of the
communication pair the node came from.  The square-root assignment for
nodes sets ``p_i = sqrt(l_i)``.

:class:`StarNodeLoss` is the specialised star-shaped instance of
Section 4: nodes at distances ``delta_i`` around a centre, pairwise
distance ``delta_i + delta_j``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import InvalidInstanceError
from repro.geometry.metric import Metric
from repro.geometry.star import StarMetric


class NodeLossInstance:
    """Nodes with loss parameters in a metric space.

    Parameters
    ----------
    distances:
        ``(m, m)`` pairwise distance array between the node-loss nodes.
        Zero off-diagonal distances are allowed (two nodes at the same
        point simply can never be scheduled together).
    losses:
        Positive loss parameters ``l_i``.
    alpha, beta:
        Path-loss exponent and default gain.
    """

    def __init__(
        self,
        distances: np.ndarray,
        losses: Sequence[float],
        alpha: float = 3.0,
        beta: float = 1.0,
    ):
        distances = np.asarray(distances, dtype=float)
        losses_arr = np.asarray(losses, dtype=float).reshape(-1)
        m = losses_arr.size
        if m == 0:
            raise InvalidInstanceError("node-loss instance must be non-empty")
        if distances.shape != (m, m):
            raise InvalidInstanceError(
                f"distances shape {distances.shape} != ({m}, {m})"
            )
        if not np.allclose(distances, distances.T):
            raise InvalidInstanceError("distance matrix must be symmetric")
        if np.any(distances < 0):
            raise InvalidInstanceError("distances must be non-negative")
        if np.any(losses_arr <= 0) or not np.all(np.isfinite(losses_arr)):
            raise InvalidInstanceError("loss parameters must be positive and finite")
        if alpha < 1:
            raise InvalidInstanceError(f"alpha must be >= 1, got {alpha}")
        if not beta > 0:
            raise InvalidInstanceError(f"beta must be > 0, got {beta}")
        self._distances = distances.copy()
        np.fill_diagonal(self._distances, 0.0)
        self._distances.setflags(write=False)
        self.losses = losses_arr.copy()
        self.losses.setflags(write=False)
        self.alpha = float(alpha)
        self.beta = float(beta)

    @classmethod
    def from_metric(
        cls,
        metric: Metric,
        nodes: Sequence[int],
        losses: Sequence[float],
        alpha: float = 3.0,
        beta: float = 1.0,
    ) -> "NodeLossInstance":
        """Build from node indices of a host metric."""
        nodes = np.asarray(nodes, dtype=int)
        sub = metric.distance_matrix()[np.ix_(nodes, nodes)]
        return cls(sub, losses, alpha=alpha, beta=beta)

    @property
    def m(self) -> int:
        """Number of node-loss nodes."""
        return self.losses.size

    @property
    def distances(self) -> np.ndarray:
        """Pairwise distances (read-only)."""
        return self._distances

    def loss_matrix(self) -> np.ndarray:
        """Pairwise loss ``l(i, j) = d(i, j)**alpha``."""
        return self._distances**self.alpha

    def sqrt_powers(self) -> np.ndarray:
        """The square-root assignment ``p_i = sqrt(l_i)`` for nodes."""
        return np.sqrt(self.losses)

    def subset(self, indices: Sequence[int]) -> "NodeLossInstance":
        """Restriction to the given node indices."""
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            raise InvalidInstanceError("subset must be non-empty")
        sub = self._distances[np.ix_(indices, indices)]
        return NodeLossInstance(
            sub, self.losses[indices], alpha=self.alpha, beta=self.beta
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeLossInstance(m={self.m}, alpha={self.alpha}, beta={self.beta})"


class StarNodeLoss(NodeLossInstance):
    """A node-loss instance on a star metric (Section 4).

    Nodes sit at distances ``delta_i`` from an implicit centre;
    pairwise distances are ``delta_i + delta_j``.  Exposes the decay
    parameters ``d_i = delta_i**alpha`` and the ratios
    ``a_i = l_i / d_i`` that drive the Lemma 5 case split.
    """

    def __init__(
        self,
        center_distances: Sequence[float],
        losses: Sequence[float],
        alpha: float = 3.0,
        beta: float = 1.0,
    ):
        star = StarMetric(center_distances)
        super().__init__(star.distance_matrix(), losses, alpha=alpha, beta=beta)
        self.center_distances = star.center_distances

    @property
    def decay(self) -> np.ndarray:
        """Decay parameters ``d_i = delta_i**alpha``."""
        return self.center_distances**self.alpha

    @property
    def loss_to_decay(self) -> np.ndarray:
        """The ratios ``a_i = l_i / d_i`` of Section 4."""
        return self.losses / self.decay

    def subset(self, indices: Sequence[int]) -> "StarNodeLoss":
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            raise InvalidInstanceError("subset must be non-empty")
        return StarNodeLoss(
            self.center_distances[indices],
            self.losses[indices],
            alpha=self.alpha,
            beta=self.beta,
        )
