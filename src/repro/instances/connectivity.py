"""Strong-connectivity request sets (the Moscibroda-Wattenhofer workload).

The paper's predecessor [12] asks: given n arbitrarily placed points,
how many colors are needed to schedule a set of requests that makes
the communication graph *strongly connected*?  They prove uniform and
linear assignments need Omega(n) colors on worst-case configurations
while clever power control needs O(log^4 n).

This module builds the two standard connectivity request sets:

* :func:`mst_connectivity_instance` — the edges of a minimum spanning
  tree of the metric (bidirectional requests, or both orientations in
  the directed variant); connecting and edge-minimal.
* :func:`nearest_neighbor_instance` — every node links to its nearest
  neighbour; the classic first stage of connectivity constructions.

plus :func:`exponential_node_chain`, the worst-case point placement
(exponentially spaced nodes on a line) on which uniform/linear power
assignments fail.
"""

from __future__ import annotations

from typing import Union

import networkx as nx
import numpy as np

from repro.core.instance import Direction, Instance
from repro.geometry.line import LineMetric
from repro.geometry.metric import Metric


def _mst_edges(metric: Metric):
    matrix = metric.distance_matrix()
    graph = nx.Graph()
    graph.add_nodes_from(range(metric.n))
    for u in range(metric.n):
        for v in range(u + 1, metric.n):
            graph.add_edge(u, v, weight=float(matrix[u, v]))
    tree = nx.minimum_spanning_tree(graph)
    return list(tree.edges())


def mst_connectivity_instance(
    metric: Metric,
    direction: Union[Direction, str] = Direction.BIDIRECTIONAL,
    alpha: float = 3.0,
    beta: float = 1.0,
) -> Instance:
    """Requests along the MST of *metric* (a connectivity workload).

    In the bidirectional variant one request per MST edge suffices for
    strong connectivity; the directed variant takes both orientations.
    """
    if metric.n < 2:
        raise ValueError("connectivity needs at least two nodes")
    edges = _mst_edges(metric)
    if isinstance(direction, str):
        direction = Direction(direction)
    if direction is Direction.BIDIRECTIONAL:
        senders = [u for u, _ in edges]
        receivers = [v for _, v in edges]
    else:
        senders = [u for u, _ in edges] + [v for _, v in edges]
        receivers = [v for _, v in edges] + [u for u, _ in edges]
    return Instance(
        metric, senders, receivers, direction=direction, alpha=alpha, beta=beta
    )


def nearest_neighbor_instance(
    metric: Metric,
    direction: Union[Direction, str] = Direction.DIRECTED,
    alpha: float = 3.0,
    beta: float = 1.0,
) -> Instance:
    """Every node sends to its nearest neighbour.

    Duplicate links (mutual nearest neighbours) are kept once per
    direction, matching the usual formulation.
    """
    if metric.n < 2:
        raise ValueError("need at least two nodes")
    matrix = metric.distance_matrix().copy()
    np.fill_diagonal(matrix, np.inf)
    nearest = np.argmin(matrix, axis=1)
    senders = list(range(metric.n))
    receivers = [int(nearest[u]) for u in senders]
    return Instance(
        metric, senders, receivers, direction=direction, alpha=alpha, beta=beta
    )


def exponential_node_chain(
    n: int, base: float = 2.0, origin: float = 0.0
) -> LineMetric:
    """The [12] worst case: nodes at ``origin + base^i`` on the line.

    Nearest-neighbour link lengths grow geometrically, which is the
    configuration where uniform and linear assignments need Omega(n)
    colors for connectivity.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if base <= 1:
        raise ValueError("base must be > 1")
    if (n + 1) * np.log(base) > np.log(1e100):
        raise ValueError("chain overflows double precision")
    return LineMetric([origin + float(base) ** i for i in range(1, n + 1)])
