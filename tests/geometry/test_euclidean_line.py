"""Tests for EuclideanMetric and LineMetric."""

import numpy as np
import pytest

from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.line import LineMetric


class TestEuclideanMetric:
    def test_known_distances(self, square_metric):
        assert square_metric.distance(0, 1) == pytest.approx(1.0)
        assert square_metric.distance(0, 3) == pytest.approx(np.sqrt(2))

    def test_1d_input_reshaped(self):
        metric = EuclideanMetric([0.0, 3.0, 7.0])
        assert metric.dim == 1
        assert metric.distance(0, 2) == pytest.approx(7.0)

    def test_3d_points(self):
        metric = EuclideanMetric([[0, 0, 0], [1, 2, 2]])
        assert metric.distance(0, 1) == pytest.approx(3.0)

    def test_points_readonly(self, square_metric):
        with pytest.raises(ValueError):
            square_metric.points[0, 0] = 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EuclideanMetric(np.zeros((0, 2)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EuclideanMetric([[np.nan, 0.0]])

    def test_3d_array_rejected(self):
        with pytest.raises(ValueError):
            EuclideanMetric(np.zeros((2, 2, 2)))

    def test_input_copied(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        metric = EuclideanMetric(pts)
        pts[1, 0] = 99.0
        assert metric.distance(0, 1) == pytest.approx(1.0)


class TestLineMetric:
    def test_distances(self, line_metric):
        assert line_metric.distance(1, 3) == pytest.approx(5.0)

    def test_negative_coordinates(self):
        metric = LineMetric([-4.0, 4.0])
        assert metric.distance(0, 1) == pytest.approx(8.0)

    def test_matches_euclidean_1d(self, rng):
        coords = rng.uniform(-10, 10, size=6)
        a = LineMetric(coords).distance_matrix()
        b = EuclideanMetric(coords).distance_matrix()
        assert np.allclose(a, b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LineMetric([])

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            LineMetric([0.0, np.inf])

    def test_coordinates_readonly(self, line_metric):
        with pytest.raises(ValueError):
            line_metric.coordinates[0] = 1.0
