"""Tests for power assignments."""

import numpy as np
import pytest

from repro.core.errors import InvalidScheduleError
from repro.core.instance import Instance
from repro.geometry.line import LineMetric
from repro.power.explicit import ExplicitPower, geometric_power
from repro.power.oblivious import (
    FunctionPower,
    LinearPower,
    MeanPower,
    SquareRootPower,
    UniformPower,
)


@pytest.fixture
def instance():
    # Links of length 1, 2, 4 (losses 1, 8, 64 at alpha=3).
    metric = LineMetric([0.0, 1.0, 10.0, 12.0, 30.0, 34.0])
    return Instance.bidirectional(metric, [(0, 1), (2, 3), (4, 5)], alpha=3.0)


class TestObliviousFamilies:
    def test_uniform(self, instance):
        assert np.allclose(UniformPower(2.0)(instance), [2.0, 2.0, 2.0])

    def test_linear(self, instance):
        assert np.allclose(LinearPower()(instance), [1.0, 8.0, 64.0])

    def test_sqrt(self, instance):
        assert np.allclose(SquareRootPower()(instance), [1.0, np.sqrt(8), 8.0])

    def test_mean_family_interpolates(self, instance):
        assert np.allclose(MeanPower(0.0)(instance), UniformPower()(instance))
        assert np.allclose(MeanPower(1.0)(instance), LinearPower()(instance))
        assert np.allclose(MeanPower(0.5)(instance), SquareRootPower()(instance))

    def test_mean_superlinear(self, instance):
        powers = MeanPower(2.0)(instance)
        assert np.allclose(powers, [1.0, 64.0, 4096.0])

    def test_scale_parameter(self, instance):
        assert np.allclose(
            SquareRootPower(scale=3.0)(instance), 3.0 * SquareRootPower()(instance)
        )

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            MeanPower(-0.5)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError):
            UniformPower(0.0)

    def test_names(self):
        assert UniformPower().name == "uniform"
        assert LinearPower().name == "linear"
        assert SquareRootPower().name == "sqrt"
        assert MeanPower(0.75).name == "loss^0.75"

    def test_obliviousness_is_declared(self):
        assert SquareRootPower().is_oblivious()


class TestFunctionPower:
    def test_custom_function(self, instance):
        custom = FunctionPower(lambda loss: loss + 1.0, name="l+1")
        assert np.allclose(custom(instance), [2.0, 9.0, 65.0])
        assert custom.name == "l+1"

    def test_function_returning_zero_rejected(self, instance):
        bad = FunctionPower(lambda loss: loss * 0.0)
        with pytest.raises(InvalidScheduleError):
            bad(instance)

    def test_function_returning_nan_rejected(self, instance):
        bad = FunctionPower(lambda loss: loss * np.nan)
        with pytest.raises(InvalidScheduleError):
            bad(instance)


class TestExplicitPower:
    def test_round_trip(self, instance):
        explicit = ExplicitPower([1.0, 2.0, 3.0])
        assert np.allclose(explicit(instance), [1.0, 2.0, 3.0])

    def test_size_mismatch_rejected(self, instance):
        with pytest.raises(ValueError, match="cover"):
            ExplicitPower([1.0, 2.0])(instance)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            ExplicitPower([1.0, -2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ExplicitPower([])


class TestGeometricPower:
    def test_ratios_follow_base(self, instance):
        assignment = geometric_power(instance, base=2.0)
        powers = assignment(instance)
        assert powers[1] / powers[0] == pytest.approx(2.0)
        assert powers[2] / powers[1] == pytest.approx(2.0)

    def test_default_base_uses_alpha(self, instance):
        assignment = geometric_power(instance)
        powers = assignment(instance)
        expected = 2.0 ** (instance.alpha / 2.0)
        assert powers[1] / powers[0] == pytest.approx(expected)

    def test_bad_base_rejected(self, instance):
        with pytest.raises(ValueError):
            geometric_power(instance, base=0.0)
