"""The asyncio serving layer: admission, backpressure, shed, drain.

No pytest-asyncio in the toolchain: each test is a plain function
driving its own event loop with ``asyncio.run``.
"""

import asyncio

import numpy as np
import pytest

from repro.api import Problem
from repro.instances.random_instances import random_uniform_instance
from repro.serve import AdmissionDecision, ScheduleServer, ServeConfig


def _problem(n=10, seed=5):
    return Problem(random_uniform_instance(n, rng=seed))


class TestAdmission:
    def test_accepted_arrivals_carry_handle_and_color(self):
        async def main():
            async with ScheduleServer() as server:
                server.add_session("a", _problem())
                decision = await server.submit("a", (0, 3))
                assert isinstance(decision, AdmissionDecision)
                assert decision.accepted and decision.reason is None
                assert decision.color >= 0
                assert decision.handle.sender == 0
                assert decision.handle.receiver == 3
                assert decision.latency_s >= 0.0
                session = server.session("a")
                assert session.color_of(decision.handle) == decision.color

        asyncio.run(main())

    def test_admissions_match_plain_session(self):
        async def main():
            pairs = [(0, 3), (2, 7), (5, 1), (4, 9)]
            async with ScheduleServer() as server:
                server.add_session("a", _problem())
                for pair in pairs:
                    await server.submit("a", pair)
                served = np.asarray(server.session("a").ensure_live().colors)
            plain = _problem().session()
            plain.ensure_live()
            plain.add_requests(pairs)
            np.testing.assert_array_equal(
                served, np.asarray(plain.ensure_live().colors)
            )

        asyncio.run(main())

    def test_capacity_cap_rejects(self):
        async def main():
            async with ScheduleServer() as server:
                server.add_session(
                    "a", _problem(), ServeConfig(max_requests=12)
                )
                first = await server.submit("a", (0, 3))
                second = await server.submit("a", (2, 7))
                third = await server.submit("a", (5, 1))
                assert first.accepted and second.accepted
                assert not third.accepted
                assert third.reason == "capacity"
                assert third.handle is None and third.color == -1
                stats = server.stats("a")
                assert stats["admitted"] == 2
                assert stats["rejected_capacity"] == 1

        asyncio.run(main())

    def test_departures_free_capacity(self):
        async def main():
            async with ScheduleServer() as server:
                server.add_session(
                    "a", _problem(), ServeConfig(max_requests=11)
                )
                first = await server.submit("a", (0, 3))
                blocked = await server.submit("a", (2, 7))
                assert first.accepted and not blocked.accepted
                server.remove("a", first.handle)
                retried = await server.submit("a", (2, 7))
                assert retried.accepted
                assert server.stats("a")["departures"] == 1

        asyncio.run(main())

    def test_multiple_sessions_are_independent(self):
        async def main():
            async with ScheduleServer() as server:
                server.add_session("a", _problem(seed=5))
                server.add_session("b", _problem(seed=6))
                results = await asyncio.gather(
                    *(server.submit("a", (0, i + 1)) for i in range(3)),
                    *(server.submit("b", (1, i + 2)) for i in range(3)),
                )
                assert all(d.accepted for d in results)
                assert server.session("a").arrivals == 3
                assert server.session("b").arrivals == 3
                with pytest.raises(KeyError, match="no session"):
                    await server.submit("c", (0, 1))

        asyncio.run(main())


class TestBackpressureAndShed:
    def test_slow_consumer_backpressures_producer(self):
        """A slow on_admit consumer fills the bounded queue; further
        submits must then suspend (backpressure) instead of growing
        the queue without bound."""

        async def main():
            gate = asyncio.Event()
            consumed = []

            async def slow_consumer(decision):
                await gate.wait()
                consumed.append(decision)

            async with ScheduleServer() as server:
                server.add_session(
                    "a",
                    _problem(),
                    ServeConfig(queue_capacity=2, on_admit=slow_consumer),
                )
                producers = [
                    asyncio.create_task(server.submit("a", (0, i + 1)))
                    for i in range(5)
                ]
                await asyncio.sleep(0.05)
                # Worker is parked in the consumer; the queue is full
                # and at least one producer is suspended on put().
                assert server.pending("a") == 2
                blocked = [p for p in producers if not p.done()]
                assert len(blocked) >= 3
                gate.set()
                decisions = await asyncio.gather(*producers)
                assert all(d.accepted for d in decisions)
                await server.drain("a")
                assert len(consumed) == 5

        asyncio.run(main())

    def test_shed_policy_rejects_on_full_queue(self):
        async def main():
            gate = asyncio.Event()

            async def slow_consumer(decision):
                await gate.wait()

            async with ScheduleServer() as server:
                server.add_session(
                    "a",
                    _problem(),
                    ServeConfig(
                        queue_capacity=1,
                        overflow="shed",
                        on_admit=slow_consumer,
                    ),
                )
                producers = [
                    asyncio.create_task(server.submit("a", (0, i + 1)))
                    for i in range(4)
                ]
                await asyncio.sleep(0.05)
                gate.set()
                decisions = await asyncio.gather(*producers)
                shed = [d for d in decisions if not d.accepted]
                assert shed and all(d.reason == "queue_full" for d in shed)
                # Shed decisions resolve immediately — no producer hung.
                stats = server.stats("a")
                assert stats["rejected_queue"] == len(shed)
                assert stats["admitted"] == 4 - len(shed)

        asyncio.run(main())


class TestDrainAndClose:
    def test_drain_admits_everything_queued(self):
        async def main():
            async with ScheduleServer() as server:
                server.add_session("a", _problem())
                tasks = [
                    asyncio.create_task(server.submit("a", (0, i + 1)))
                    for i in range(6)
                ]
                await server.drain()
                assert server.pending("a") == 0
                decisions = await asyncio.gather(*tasks)
                assert sum(d.accepted for d in decisions) == 6
                result = server.session("a").live_result()
                assert result.provenance.incremental is True
                assert result.provenance.arrivals == 6
                result.validate()

        asyncio.run(main())

    def test_close_rejects_new_arrivals_but_finishes_queued(self):
        async def main():
            gate = asyncio.Event()

            async def slow_consumer(decision):
                await gate.wait()

            server = ScheduleServer()
            async with server:
                server.add_session(
                    "a",
                    _problem(),
                    ServeConfig(queue_capacity=4, on_admit=slow_consumer),
                )
                queued = [
                    asyncio.create_task(server.submit("a", (0, i + 1)))
                    for i in range(3)
                ]
                await asyncio.sleep(0.02)
                closing = asyncio.create_task(server.aclose())
                await asyncio.sleep(0.02)
                late = await server.submit("a", (5, 6))
                assert not late.accepted and late.reason == "closed"
                gate.set()
                decisions = await asyncio.gather(*queued)
                assert all(d.accepted for d in decisions)
                await closing
            # Idempotent: the context manager exit closed again.
            stats = server.stats("a")
            assert stats["admitted"] == 3

        asyncio.run(main())

    def test_stats_percentiles_present(self):
        async def main():
            async with ScheduleServer() as server:
                server.add_session("a", _problem())
                for i in range(5):
                    await server.submit("a", (0, i + 1))
                stats = server.stats("a")
                assert stats["p50_latency_s"] > 0
                assert stats["p99_latency_s"] >= stats["p50_latency_s"]
                assert stats["arrivals_per_sec"] > 0
                everything = server.stats()
                assert set(everything) == {"a"}

        asyncio.run(main())
