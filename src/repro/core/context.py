"""Shared interference engine: cached gain matrices + incremental classes.

Every algorithm in this library reduces to one primitive — querying
SINR interference under a fixed power vector.  Before this module each
caller rebuilt the O(n^2) gain matrices (and re-exponentiated the full
metric loss matrix) on every query; :class:`InterferenceContext` builds
them once per ``(instance, powers)`` and answers all subsequent queries
from the cache.

Two levels of API
-----------------

* **Wrappers** (:func:`repro.core.feasibility.sinr_margins`,
  :func:`repro.analysis.capacity.greedy_max_feasible_subset`, the
  schedulers in :mod:`repro.scheduling`): unchanged public signatures.
  They transparently fetch a cached context via :func:`get_context`.
  Use these for one-off queries and everyday code — caching makes
  repeated calls with the same ``(instance, powers)`` cheap
  automatically.

* **The context itself**: fetch one with
  ``ctx = get_context(instance, powers)`` when you are writing a hot
  loop that issues many interference queries (a scheduler, a search, a
  simulation).  Methods — :meth:`~InterferenceContext.margins`,
  :meth:`~InterferenceContext.feasible_mask`,
  :meth:`~InterferenceContext.budget_slack`,
  :meth:`~InterferenceContext.greedy_max_feasible_subset` — are
  vectorized on the cached matrices and skip all per-call rebuilding.
  For sets that grow and shrink one request at a time (first-fit
  classes, local search, protocol simulation), obtain a
  :class:`ClassAccumulator` via :meth:`InterferenceContext.accumulator`:
  it maintains the interference **every request of the instance** would
  suffer from the current member set, so membership changes cost O(n)
  and feasibility checks cost O(k) — no O(k^2) recompute.

Gain backends
-------------

All gain-matrix access goes through a pluggable
:class:`repro.core.gains.GainBackend` (``context.backend``): the
default :class:`~repro.core.gains.DenseBackend` keeps the materialized
``(n, n)`` arrays of the original engine, while
:class:`~repro.core.gains.SparseBackend` stores ε-pruned CSR gains so
instances at ``n >> 10^3`` fit in memory.  Select per context via
``get_context(..., backend="sparse")``, or process-wide via
:func:`repro.core.gains.set_default_backend` / the ``REPRO_BACKEND``
environment variable.  The dense compatibility properties
(:attr:`InterferenceContext.gains_u` and friends) still exist on every
context, but on a sparse backend they *materialize* an O(n^2) array
per call — hot paths use the backend primitives instead.

Numerical contract
------------------

The context reproduces the from-scratch path bit-for-bit: gain-matrix
entries are computed by the same :mod:`repro.core.interference`
builders, and subset/color reductions use the same operation order, so
margins (and therefore every feasibility decision and every schedule)
are identical with the engine on or off.  The accumulator is the one
exception — it maintains sums incrementally, so its values agree with
:func:`~repro.core.feasibility.sinr_margins` only up to floating-point
accumulation order (tested to 1e-9 relative).  A lossless sparse
backend (``epsilon = 0``, the default) preserves this contract exactly;
a pruned one underestimates interference by at most the per-request
:attr:`~repro.core.gains.GainBackend.pruned_mass_u` bound (see
:mod:`repro.core.gains` for the certification story).

Shared-node pairs (infinite gain) are tracked exactly: the accumulator
counts infinite contributions separately from the finite sum, so
removing a shared-node member restores the finite interference instead
of leaving ``inf - inf = nan`` behind.  Zero interference is exact
too — the accumulator counts positive contributors per request, so a
request whose interferers all left reports margin ``inf`` again rather
than a cancellation residue.

Disabling the engine
--------------------

``with engine_disabled(): ...`` (or ``set_engine_enabled(False)``)
routes every wrapper back to the pre-engine from-scratch code path.
The conformance suite runs every scheduler both ways; the benchmark
(``benchmarks/bench_context_engine.py``) uses it to time the legacy
path honestly.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidScheduleError
from repro.core.gains import (
    DenseBackend,
    GainBackend,
    build_backend,
    resolve_array_namespace,
    resolve_backend,
    resolve_shard_executor,
    resolve_shard_workers,
    resolve_sparse_epsilon,
    validate_growth,
)
from repro.core.instance import Direction, Instance
from repro.core.interference import _class_sum
from repro.core.interference import interference as _interference_from_scratch

#: Default relative tolerance for feasibility comparisons (kept in sync
#: with :data:`repro.core.feasibility.DEFAULT_RTOL` without importing it,
#: to avoid a circular import).
DEFAULT_RTOL = 1e-9

#: Default bound on the total number of cached contexts across *all*
#: instances (configurable via :func:`set_context_cache_limit` or the
#: ``REPRO_CONTEXT_CACHE`` environment variable).  Long orchestrator
#: runs over many instances stay at bounded memory instead of growing
#: one cache per instance without limit.
DEFAULT_CONTEXT_CACHE_LIMIT = 32


def _margins_from(
    signals: np.ndarray, interf: np.ndarray, beta: float, noise: float
) -> np.ndarray:
    """``signal / (beta * (interference + noise))`` with the inf/zero
    conventions of :func:`repro.core.feasibility.sinr_margins`."""
    denom = beta * (interf + noise)
    margins = np.full(signals.shape, np.inf)
    np.divide(signals, denom, out=margins, where=denom > 0)
    margins[np.isinf(interf)] = 0.0
    return margins


class InterferenceContext:
    """Cached interference state for one ``(instance, powers)`` pair.

    Parameters
    ----------
    instance:
        The scheduling instance (fixes the metric, variant, alpha and
        the default ``beta``/``noise``).
    powers:
        Fixed positive power vector of length ``instance.n``.  A
        private copy is kept; later mutation of the caller's array does
        not corrupt the context (and :func:`get_context` keys the cache
        by value, so mutated powers simply resolve to a new context).
    beta, noise:
        Defaults for the per-query overrides; fall back to the
        instance's values.
    backend:
        Gain-backend name (``"dense"``/``"sparse"``/``"array"``/
        ``"sharded"``); ``None`` uses the process default
        (:func:`repro.core.gains.default_backend`).
    sparse_epsilon:
        Pruning budget for the sparse and sharded backends (``None`` =
        the process default; ignored by the dense backend).
    array_namespace, device:
        Array-API namespace and device for the ``"array"`` backend
        (``None`` = the process default namespace / the namespace's
        default device; ignored by the other backends).
    shard_workers, shard_executor:
        Worker count and executor name (``"serial"``/``"process"``)
        for the ``"sharded"`` backend (``None`` = the process defaults,
        :func:`repro.core.gains.default_shard_workers` /
        :func:`repro.core.gains.default_shard_executor`; ignored by the
        other backends).

    Notes
    -----
    The gain backend is built lazily on first use and shared read-only.
    All query methods accept ``beta``/``noise`` overrides, so a single
    context serves the γ-rescaling machinery of §3.1 (e.g. the
    Theorem 15 repair pass at ``beta / 2``) without rebuilding
    anything.
    """

    def __init__(
        self,
        instance: Instance,
        powers: np.ndarray,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        backend: Optional[str] = None,
        sparse_epsilon: Optional[float] = None,
        array_namespace: Optional[str] = None,
        device: Optional[object] = None,
        shard_workers: Optional[int] = None,
        shard_executor: Optional[str] = None,
    ):
        powers = np.array(powers, dtype=float).reshape(-1)
        if powers.shape != (instance.n,):
            raise InvalidScheduleError(
                f"powers must have shape ({instance.n},), got {powers.shape}"
            )
        if np.any(powers <= 0):
            raise InvalidScheduleError("all powers must be strictly positive")
        self.instance = instance
        self.powers = powers
        self.powers.setflags(write=False)
        self.beta = instance.beta if beta is None else float(beta)
        self.noise = instance.noise if noise is None else float(noise)
        if not self.beta > 0:
            raise ValueError(f"beta must be > 0, got {self.beta}")
        if self.noise < 0:
            raise ValueError(f"noise must be >= 0, got {self.noise}")
        self.backend_name = resolve_backend(backend)
        self.sparse_epsilon = (
            resolve_sparse_epsilon(sparse_epsilon)
            if self.backend_name in ("sparse", "sharded")
            else 0.0
        )
        self.array_namespace = (
            resolve_array_namespace(array_namespace)
            if self.backend_name == "array"
            else ""
        )
        self.device = device if self.backend_name == "array" else None
        if self.backend_name == "sharded":
            self.shard_workers = resolve_shard_workers(shard_workers)
            self.shard_executor = resolve_shard_executor(shard_executor)
        else:
            self.shard_workers = 0
            self.shard_executor = ""
        self._signals: Optional[np.ndarray] = None
        self._backend: Optional[GainBackend] = None

    # ------------------------------------------------------------------
    # Cached gain backend
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of requests."""
        return self.instance.n

    @property
    def directed(self) -> bool:
        """Single-matrix (directed) variant?  Answerable without
        building the gain backend."""
        return self.instance.direction is Direction.DIRECTED

    @property
    def backend(self) -> GainBackend:
        """The gain backend (built lazily on first use, then shared).

        All interference math routes through its primitives; see
        :mod:`repro.core.gains` for the protocol and the dense/sparse
        implementations.
        """
        if self._backend is None:
            self._backend = build_backend(
                self.instance,
                self.powers,
                backend=self.backend_name,
                sparse_epsilon=self.sparse_epsilon,
                array_namespace=self.array_namespace or None,
                device=self.device,
                shard_workers=self.shard_workers or None,
                shard_executor=self.shard_executor or None,
            )
        return self._backend

    @property
    def signals(self) -> np.ndarray:
        """Received signal strengths ``p_i / l(u_i, v_i)`` (read-only)."""
        if self._signals is None:
            signals = self.powers / self.instance.link_losses
            signals.setflags(write=False)
            self._signals = signals
        return self._signals

    @property
    def gains_u(self) -> np.ndarray:
        """Gain matrix at endpoint ``u`` (the single directed matrix in
        the directed variant; read-only on the dense backend).

        Compatibility property for dense-only consumers (stacked
        batching, affectance analyses): on a sparse backend every
        access **materializes** an O(n^2) array — hot paths use the
        :attr:`backend` primitives instead.
        """
        backend = self.backend
        if isinstance(backend, DenseBackend):
            return backend.gains_u
        return backend.dense_u()

    @property
    def gains_v(self) -> np.ndarray:
        """Gain matrix at endpoint ``v`` (aliases :attr:`gains_u` in the
        directed variant; see :attr:`gains_u` for the sparse caveat)."""
        backend = self.backend
        if isinstance(backend, DenseBackend):
            return backend.gains_v
        if backend.directed:
            return backend.dense_u()
        return backend.dense_v()

    @property
    def worst_gains(self) -> np.ndarray:
        """Worst-endpoint gain matrix ``max(G_u, G_v)``.

        The matrix affectance and conflict-graph analyses work on; in
        the directed variant it is :attr:`gains_u` itself.  Sparse
        backends materialize it per call (see :attr:`gains_u`).
        """
        backend = self.backend
        if isinstance(backend, DenseBackend):
            return backend.worst_gains
        if backend.directed:
            return backend.dense_u()
        return np.maximum(backend.dense_u(), backend.dense_v())

    @property
    def gains_ut(self) -> np.ndarray:
        """Contiguous transpose of :attr:`gains_u` (read-only, cached
        on the dense backend; materialized per call on sparse).

        ``gains_ut[j]`` is the gain *column* of request ``j`` — what
        every other request suffers when ``j`` transmits — laid out
        contiguously.  Column-consuming hot loops use
        ``backend.col_u(j)``, which reads this layout on the dense
        backend and a transposed CSR row on the sparse one.
        """
        backend = self.backend
        if isinstance(backend, DenseBackend):
            return backend.gains_ut
        return backend.dense_ut()

    @property
    def gains_vt(self) -> np.ndarray:
        """Contiguous transpose of :attr:`gains_v` (aliases
        :attr:`gains_ut` in the directed variant)."""
        backend = self.backend
        if isinstance(backend, DenseBackend):
            return backend.gains_vt
        if backend.directed:
            return backend.dense_ut()
        return backend.dense_vt()

    @property
    def has_infinite_gains(self) -> bool:
        """Does any gain entry equal ``inf`` (shared-node pairs)?

        Answered by the backend (computed once).  The accumulator and
        the scheduler kernels take a cheaper all-finite fast path (no
        per-update ``isfinite`` masking) when this is ``False`` — which
        is every instance without shared-node pairs.
        """
        return self.backend.has_infinite_gains

    def extend_to(self, instance: Instance, powers: np.ndarray) -> None:
        """Grow this context in place to ``(instance, powers)``.

        The new pair must extend the current one (same metric object,
        variant and alpha; existing requests and powers bit-unchanged
        as a prefix — see :func:`repro.core.gains.validate_growth`).
        An already-built gain backend grows via
        :meth:`~repro.core.gains.GainBackend.append_requests` — only
        the new rows/columns are computed, O(n) per arrival instead of
        an O(n^2) cold rebuild, and (at ``epsilon = 0``) bit-identical
        to one.  Signals are recomputed lazily; being elementwise, the
        recomputed prefix is bit-identical too.

        Cache discipline: the context cache keys on ``id(instance)``
        and the power bytes, both of which change here.  Long-lived
        owners (:class:`repro.api.Session`) must
        :func:`unpin_context` **before** calling this and
        :func:`repin_context` **after**, so the old slot is released
        and the grown context takes the new key's slot.
        """
        powers = np.array(powers, dtype=float).reshape(-1)
        if powers.shape != (instance.n,):
            raise InvalidScheduleError(
                f"powers must have shape ({instance.n},), got {powers.shape}"
            )
        if np.any(powers <= 0):
            raise InvalidScheduleError("all powers must be strictly positive")
        validate_growth(self.instance, self.powers, instance, powers)
        if self._backend is not None:
            self._backend.append_requests(instance, powers)
        self.instance = instance
        powers.setflags(write=False)
        self.powers = powers
        self._signals = None

    def budgets(
        self, beta: Optional[float] = None, noise: Optional[float] = None
    ) -> np.ndarray:
        """Interference budgets ``signal / beta - noise`` per request.

        A request can join a class only while the class's interference
        at it stays within this budget.
        """
        beta = self.beta if beta is None else float(beta)
        noise = self.noise if noise is None else float(noise)
        return self.signals / beta - noise

    # ------------------------------------------------------------------
    # Vectorized queries
    # ------------------------------------------------------------------

    def interference(
        self,
        colors: Optional[np.ndarray] = None,
        subset: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Worst-endpoint interference per request (cf.
        :func:`repro.core.interference.interference`).

        Parameters
        ----------
        colors:
            If given, only same-color pairs interfere.
        subset:
            Restrict to these request indices (result aligned to the
            subset, like the module-level function).
        """
        backend = self.backend
        if subset is not None:
            idx = np.asarray(subset, dtype=int)
            if np.unique(idx).size != idx.size:
                # A repeated index names two copies of one request; the
                # cached matrices' zero diagonal cannot express their
                # mutual interference, so defer to the from-scratch
                # sub-instance computation (identical to the legacy
                # path) for this degenerate call.
                return _interference_from_scratch(
                    self.instance, self.powers, colors, idx
                )
            if colors is None:
                # Tiled per-row sums (bit-identical to gathering the
                # block and reducing it) — no dense (k, k) scratch, so
                # subset queries stay inside the sparse backend's
                # memory budget at large k.
                interf = backend.row_sums_u(idx)
                if not backend.directed:
                    interf = np.maximum(interf, backend.row_sums_v(idx))
                return interf
            sub_colors = np.asarray(colors)[idx]
            interf = _class_sum(backend.block_u(idx), sub_colors)
            if not backend.directed:
                interf = np.maximum(
                    interf, _class_sum(backend.block_v(idx), sub_colors)
                )
            return interf
        interf = backend.class_sum_u(colors)
        if not backend.directed:
            interf = np.maximum(interf, backend.class_sum_v(colors))
        return interf

    def margins(
        self,
        colors: Optional[np.ndarray] = None,
        subset: Optional[Sequence[int]] = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> np.ndarray:
        """SINR margins ``signal / (beta * (interference + noise))``.

        Bit-for-bit identical to
        :func:`repro.core.feasibility.sinr_margins` (which routes here
        when the engine is enabled).
        """
        beta = self.beta if beta is None else float(beta)
        noise = self.noise if noise is None else float(noise)
        signals = self.signals
        interf = self.interference(colors=colors, subset=subset)
        if subset is not None:
            signals = signals[np.asarray(subset, dtype=int)]
        return _margins_from(signals, interf, beta, noise)

    def budget_slack(
        self,
        subset: Sequence[int],
        colors: Optional[np.ndarray] = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> np.ndarray:
        """Remaining interference budget for each request of *subset*.

        ``slack[i] = budget_i - interference_i`` where the interference
        is taken within *subset* (or within *subset*'s same-color peers
        when *colors* is given).  Negative slack means the request's
        SINR constraint is violated; shared-node interference yields
        ``-inf``.
        """
        idx = np.asarray(subset, dtype=int)
        interf = self.interference(colors=colors, subset=idx)
        slack = self.budgets(beta=beta, noise=noise)[idx] - interf
        return slack

    def feasible_mask(
        self,
        subset: Sequence[int],
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> np.ndarray:
        """Boolean mask (aligned to *subset*) of satisfied requests when
        all of *subset* transmits together."""
        idx = np.asarray(subset, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        return self.margins(subset=idx, beta=beta, noise=noise) >= 1.0 - rtol

    def is_feasible_subset(
        self,
        subset: Sequence[int],
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> bool:
        """Can all requests of *subset* share one color?"""
        idx = np.asarray(subset, dtype=int)
        if idx.size == 0:
            return True
        return bool(np.all(self.feasible_mask(idx, beta=beta, noise=noise, rtol=rtol)))

    def is_feasible_partition(
        self,
        colors: np.ndarray,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> bool:
        """Does the coloring *colors* satisfy every class?"""
        margins = self.margins(colors=np.asarray(colors), beta=beta, noise=noise)
        return bool(np.all(margins >= 1.0 - rtol))

    # ------------------------------------------------------------------
    # Incremental structures and algorithms
    # ------------------------------------------------------------------

    def accumulator(
        self,
        members: Optional[Sequence[int]] = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> "ClassAccumulator":
        """A fresh :class:`ClassAccumulator`, optionally pre-seeded with
        *members* (bulk-initialized in one vectorized pass)."""
        return ClassAccumulator(self, members=members, beta=beta, noise=noise)

    def greedy_max_feasible_subset(
        self,
        candidates: Optional[Sequence[int]] = None,
        beta: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> np.ndarray:
        """A maximal feasible subset of *candidates* (peel worst margin,
        then re-add).

        Decision-for-decision identical to the legacy
        :func:`repro.analysis.capacity.greedy_max_feasible_subset` loop
        (margins are computed with the same operation order), but each
        round costs O(k^2) on the cached gains instead of re-deriving
        loss and gain matrices from the metric.
        """
        if candidates is None:
            current = list(range(self.n))
        else:
            current = [int(i) for i in candidates]
        dropped: List[int] = []
        while current:
            subset = np.asarray(current, dtype=int)
            margins = self.margins(subset=subset, beta=beta)
            if np.all(margins >= 1.0 - rtol):
                break
            worst = int(np.argmin(margins))
            dropped.append(current.pop(worst))
        for req in reversed(dropped):
            trial = np.asarray(current + [req], dtype=int)
            trial_margins = self.margins(subset=trial, beta=beta)
            if np.all(trial_margins >= 1.0 - rtol):
                current.append(req)
        return np.asarray(sorted(current), dtype=int)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self._backend.name if self._backend is not None else "lazy"
        return (
            f"InterferenceContext(n={self.n}, "
            f"direction={self.instance.direction.value}, "
            f"backend={self.backend_name}, gains={state})"
        )


class ClassAccumulator:
    """Incremental same-color interference bookkeeping for one class.

    Generalizes the private ``_ClassState`` bookkeeping that used to
    live inside ``first_fit_schedule``: the accumulator maintains, for
    **every** request of the instance, the interference it would suffer
    from the current member set — so testing whether an outside request
    can join is O(k), and joining/leaving is O(n) (one gain-matrix
    column), never an O(k^2) recompute.

    Infinite gains (shared-node pairs) are tracked as separate counts so
    that removal is exact: ``inf`` contributions never enter the finite
    running sums, hence never leave ``nan`` debris behind.

    Use :meth:`InterferenceContext.accumulator` to construct one.
    """

    def __init__(
        self,
        context: InterferenceContext,
        members: Optional[Sequence[int]] = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ):
        self.context = context
        self.beta = context.beta if beta is None else float(beta)
        self.noise = context.noise if noise is None else float(noise)
        n = context.n
        self._mask = np.zeros(n, dtype=bool)
        self._order: List[int] = []
        # Finite part, infinite-contribution count and positive-finite
        # contribution count of the member interference at each
        # request, per endpoint.  The counts make two cases *exact*
        # (not merely close): infinite interference (shared nodes) and
        # zero interference (no contributing member) — the latter so a
        # request whose interferers all left reports margin inf again
        # instead of a cancellation residue.
        self._fin_u = np.zeros(n)
        self._ninf_u = np.zeros(n, dtype=np.int64)
        self._npos_u = np.zeros(n, dtype=np.int64)
        self._directed = context.directed
        if self._directed:
            self._fin_v = self._fin_u
            self._ninf_v = self._ninf_u
            self._npos_v = self._npos_u
        else:
            self._fin_v = np.zeros(n)
            self._ninf_v = np.zeros(n, dtype=np.int64)
            self._npos_v = np.zeros(n, dtype=np.int64)
        if members is not None:
            self._bulk_add(np.asarray(members, dtype=int))

    # -- membership ----------------------------------------------------

    @property
    def members(self) -> np.ndarray:
        """Current members in insertion order."""
        return np.asarray(self._order, dtype=int)

    @property
    def member_mask(self) -> np.ndarray:
        """Boolean membership mask over all requests (read-only view)."""
        view = self._mask.view()
        view.setflags(write=False)
        return view

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, request: int) -> bool:
        return bool(self._mask[int(request)])

    def _apply_columns(self, members: np.ndarray, sign: int) -> None:
        """Accumulate the gain columns of *members* into the running
        sums — one vectorized pass per endpoint, shared by single-add,
        remove and bulk initialization.  Columns come from the gain
        backend (``col_u``/``gather_cols_u``), so the same code runs on
        dense and sparse gains.

        Instances without shared-node pairs (the common case, detected
        once via :attr:`InterferenceContext.has_infinite_gains`) skip
        the per-update ``isfinite`` masking entirely: the finite sum is
        a plain column (sum) add and the infinite counts stay zero.
        Values are bit-identical either way (``np.where`` with an
        all-true mask is the identity).
        """
        single = members.size == 1
        backend = self.context.backend
        finite_gains = not backend.has_infinite_gains
        for fin, ninf, npos, col, gather_cols in (
            (
                self._fin_u,
                self._ninf_u,
                self._npos_u,
                backend.col_u,
                backend.gather_cols_u,
            ),
            (
                self._fin_v,
                self._ninf_v,
                self._npos_v,
                backend.col_v,
                backend.gather_cols_v,
            ),
        ):
            if single:
                columns = col(int(members[0]))
                if finite_gains:
                    np.add(fin, sign * columns, out=fin)
                    np.add(npos, sign * (columns > 0), out=npos)
                else:
                    finite = np.isfinite(columns)
                    np.add(fin, sign * np.where(finite, columns, 0.0), out=fin)
                    np.add(ninf, sign * ~finite, out=ninf)
                    np.add(npos, sign * (finite & (columns > 0)), out=npos)
            else:
                columns = gather_cols(members)
                if finite_gains:
                    np.add(fin, sign * columns.sum(axis=1), out=fin)
                    np.add(npos, sign * (columns > 0).sum(axis=1), out=npos)
                else:
                    finite = np.isfinite(columns)
                    np.add(
                        fin,
                        sign * np.where(finite, columns, 0.0).sum(axis=1),
                        out=fin,
                    )
                    np.add(ninf, sign * (~finite).sum(axis=1), out=ninf)
                    np.add(
                        npos,
                        sign * (finite & (columns > 0)).sum(axis=1),
                        out=npos,
                    )
            if self._directed:
                break

    def _bulk_add(self, members: np.ndarray) -> None:
        if members.size == 0:
            return
        if np.unique(members).size != members.size or np.any(self._mask[members]):
            raise ValueError("duplicate member in bulk initialization")
        self._mask[members] = True
        self._order.extend(int(i) for i in members)
        self._apply_columns(members, +1)

    def extend_to(self, n_new: int) -> None:
        """Grow the accumulator to a context that has grown to *n_new*
        requests (see :meth:`InterferenceContext.extend_to`).

        Existing per-request sums are untouched — the new requests'
        rows only gain columns for the *new* requests, none of which is
        a member yet — and the new requests' entries are seeded in one
        vectorized pass over the members' gain block at the new rows
        (same finite/infinite bookkeeping as :meth:`_apply_columns`),
        so the accumulator keeps answering "what would this request
        suffer if it joined?" for arrivals without any replay.
        """
        n_new = int(n_new)
        n_old = self._mask.size
        if n_new < n_old:
            raise ValueError(
                f"cannot shrink accumulator from n={n_old} to n={n_new}"
            )
        if self.context.n != n_new:
            raise ValueError(
                f"context has n={self.context.n}, expected {n_new}; grow "
                "the context (InterferenceContext.extend_to) first"
            )
        if n_new == n_old:
            return

        def grow(arr: np.ndarray) -> np.ndarray:
            out = np.zeros(n_new, dtype=arr.dtype)
            out[:n_old] = arr
            return out

        self._mask = grow(self._mask)
        self._fin_u = grow(self._fin_u)
        self._ninf_u = grow(self._ninf_u)
        self._npos_u = grow(self._npos_u)
        if self._directed:
            self._fin_v = self._fin_u
            self._ninf_v = self._ninf_u
            self._npos_v = self._npos_u
        else:
            self._fin_v = grow(self._fin_v)
            self._ninf_v = grow(self._ninf_v)
            self._npos_v = grow(self._npos_v)
        if not self._order:
            return
        members = np.asarray(self._order, dtype=int)
        tail = np.arange(n_old, n_new)
        backend = self.context.backend
        finite_gains = not backend.has_infinite_gains
        for fin, ninf, npos, cross_block in (
            (self._fin_u, self._ninf_u, self._npos_u, backend.cross_block_u),
            (self._fin_v, self._ninf_v, self._npos_v, backend.cross_block_v),
        ):
            block = cross_block(tail, members)
            if finite_gains:
                fin[tail] = block.sum(axis=1)
                npos[tail] = (block > 0).sum(axis=1)
            else:
                finite = np.isfinite(block)
                fin[tail] = np.where(finite, block, 0.0).sum(axis=1)
                ninf[tail] = (~finite).sum(axis=1)
                npos[tail] = (finite & (block > 0)).sum(axis=1)
            if self._directed:
                break

    def add(self, request: int) -> None:
        """Add *request* to the class — O(n)."""
        request = int(request)
        if self._mask[request]:
            raise ValueError(f"request {request} is already a member")
        self._mask[request] = True
        self._order.append(request)
        self._apply_columns(np.asarray([request], dtype=int), +1)

    def remove(self, request: int) -> None:
        """Remove *request* from the class — O(n), exact even for
        shared-node (infinite-gain) members."""
        request = int(request)
        if not self._mask[request]:
            raise ValueError(f"request {request} is not a member")
        self._mask[request] = False
        self._order.remove(request)
        if not self._order:
            # Reset exactly: an emptied class must not carry rounding
            # residue from the add/subtract cycle.
            self._fin_u.fill(0.0)
            self._ninf_u.fill(0)
            self._npos_u.fill(0)
            self._fin_v.fill(0.0)
            self._ninf_v.fill(0)
            self._npos_v.fill(0)
        else:
            self._apply_columns(np.asarray([request], dtype=int), -1)

    # -- queries -------------------------------------------------------

    def interference_parts(
        self, requests: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-endpoint member interference ``(at u, at v)`` at
        *requests* (default: members, ascending).  In the directed
        variant both entries are the same array."""
        requests = self._requests_or_members(requests)

        def _resolve(fin, ninf, npos):
            # inf wins; with no positive contributor the value is an
            # exact 0; otherwise the (clamped) running sum.
            values = np.where(
                npos[requests] > 0, np.maximum(fin[requests], 0.0), 0.0
            )
            return np.where(ninf[requests] > 0, np.inf, values)

        interf_u = _resolve(self._fin_u, self._ninf_u, self._npos_u)
        if self._directed:
            return interf_u, interf_u
        interf_v = _resolve(self._fin_v, self._ninf_v, self._npos_v)
        return interf_u, interf_v

    def _requests_or_members(self, requests: Optional[Sequence[int]]) -> np.ndarray:
        if requests is None:
            return np.asarray(sorted(self._order), dtype=int)
        return np.asarray(requests, dtype=int)

    def interference(
        self, requests: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Worst-endpoint interference the current members induce at
        *requests* (default: the members themselves, ascending).

        Because the gain diagonals are zero, a member's own entry counts
        only the *other* members — exactly the same-color interference
        of :func:`repro.core.interference.interference`.  Entries for
        non-members answer "what would this request suffer if it
        joined?" in O(1).
        """
        idx = self._requests_or_members(requests)
        interf_u, interf_v = self.interference_parts(idx)
        return np.maximum(interf_u, interf_v)

    def margins(self, requests: Optional[Sequence[int]] = None) -> np.ndarray:
        """SINR margins of *requests* (default: members, ascending)
        against the current member set."""
        idx = self._requests_or_members(requests)
        interf = self.interference(idx)
        return _margins_from(
            self.context.signals[idx], interf, self.beta, self.noise
        )

    def budget_slack(
        self, requests: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Remaining budget ``budget - interference`` at *requests*
        (default: members, ascending); ``-inf`` under shared-node
        interference."""
        idx = self._requests_or_members(requests)
        budgets = self.context.budgets(beta=self.beta, noise=self.noise)[idx]
        return budgets - self.interference(idx)

    def feasible(self, rtol: float = DEFAULT_RTOL) -> bool:
        """Do all current members satisfy their SINR constraints?"""
        if not self._order:
            return True
        return bool(np.all(self.margins() >= 1.0 - rtol))

    def can_add(self, request: int, rtol: float = DEFAULT_RTOL) -> bool:
        """Would the class stay feasible if *request* joined? — O(k).

        Checks the candidate's own margin against the current members
        plus every member's margin with the candidate's gain column
        added; nothing is mutated.
        """
        request = int(request)
        if self._mask[request]:
            raise ValueError(f"request {request} is already a member")
        signals = self.context.signals
        threshold = 1.0 - rtol
        cand = np.asarray([request])
        cand_interf = float(self.interference(cand)[0])
        cand_margin = _margins_from(
            signals[cand], np.asarray([cand_interf]), self.beta, self.noise
        )[0]
        if not cand_margin >= threshold:
            return False
        if not self._order:
            return True
        members = np.asarray(self._order, dtype=int)
        interf_u, interf_v = self.interference_parts(members)
        backend = self.context.backend
        col_u = backend.col_u(request)
        col_v = col_u if self._directed else backend.col_v(request)
        new_u = interf_u + col_u[members]
        new_v = interf_v + col_v[members]
        new_interf = np.maximum(new_u, new_v)
        member_margins = _margins_from(
            signals[members], new_interf, self.beta, self.noise
        )
        return bool(np.all(member_margins >= threshold))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClassAccumulator(k={len(self._order)}, n={self.context.n}, "
            f"beta={self.beta}, noise={self.noise})"
        )


# ----------------------------------------------------------------------
# Engine toggle + per-instance context cache
# ----------------------------------------------------------------------

_lock = threading.RLock()
_engine_enabled = True
#: Per-instance caches live *on the instance* (as the attribute named
#: below): instance -> contexts -> instance is then a self-contained
#: reference cycle the garbage collector can reclaim once the caller
#: drops the instance.  (A module-level strong cache would pin every
#: instance until eviction; a WeakKeyDictionary would never evict —
#: each context holds a strong reference to its instance, which would
#: keep the weak key alive forever.)  The WeakSet tracks which
#: instances carry a cache, for cache_info()/clear_context_cache.
_CACHE_ATTR = "_interference_context_cache"
_cached_instances: "weakref.WeakSet[Instance]" = weakref.WeakSet()
#: Global recency order over every cached context, as
#: ``(id(instance), key) -> weakref(instance)``.  Holding only weak
#: references keeps the GC story above intact while still letting
#: :func:`get_context` enforce a *total* LRU bound across instances:
#: when the bound is exceeded, the oldest entry's context is evicted
#: from its instance's own cache dict.  Entries whose instance died
#: are dropped lazily as they surface at the LRU head.
_lru: "OrderedDict[Tuple[int, tuple], weakref.ref]" = OrderedDict()


def _env_cache_limit() -> int:
    """Validate ``REPRO_CONTEXT_CACHE`` at import (load) time.

    A malformed value must fail here, with a message naming the
    variable and the accepted form — not deep inside the first
    :func:`get_context` call of a long run.
    """
    raw = os.environ.get("REPRO_CONTEXT_CACHE", "")
    if not raw.strip():
        return DEFAULT_CONTEXT_CACHE_LIMIT
    try:
        limit = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CONTEXT_CACHE must be a positive integer (the bound on "
            f"cached interference contexts, default "
            f"{DEFAULT_CONTEXT_CACHE_LIMIT}), got {raw!r}"
        ) from None
    if limit < 1:
        raise ValueError(
            f"REPRO_CONTEXT_CACHE must be >= 1 (the bound on cached "
            f"interference contexts), got {raw!r}"
        )
    return limit


_cache_limit = _env_cache_limit()
_hits = 0
_misses = 0


def engine_enabled() -> bool:
    """Is the shared interference engine active on the wrapper paths?"""
    return _engine_enabled


def set_engine_enabled(flag: bool) -> None:
    """Globally enable/disable routing the public wrappers through the
    cached engine (disabled = pre-engine from-scratch code paths)."""
    global _engine_enabled
    _engine_enabled = bool(flag)


@contextmanager
def engine_disabled() -> Iterator[None]:
    """Temporarily restore the from-scratch (legacy) compute paths."""
    previous = _engine_enabled
    set_engine_enabled(False)
    try:
        yield
    finally:
        set_engine_enabled(previous)


def context_cache_limit() -> int:
    """Current bound on the total number of cached contexts."""
    return _cache_limit


def set_context_cache_limit(limit: int) -> None:
    """Set the total-context LRU bound (evicting down immediately)."""
    global _cache_limit
    limit = int(limit)
    if limit < 1:
        raise ValueError(f"context cache limit must be >= 1, got {limit}")
    with _lock:
        _cache_limit = limit
        _evict_over_limit()


def _evict_over_limit() -> None:
    """Evict least-recently-used contexts until within the bound.

    Must hold ``_lock``.  Dead entries (instance already collected, so
    its contexts are gone with it) are purged as they surface.
    """
    while len(_lru) > _cache_limit:
        (_, key), ref = _lru.popitem(last=False)
        inst = ref()
        if inst is None:
            continue
        per_instance = getattr(inst, _CACHE_ATTR, None)
        if per_instance is not None:
            per_instance.pop(key, None)


def get_context(
    instance: Instance,
    powers: np.ndarray,
    beta: Optional[float] = None,
    noise: Optional[float] = None,
    backend: Optional[str] = None,
    sparse_epsilon: Optional[float] = None,
    array_namespace: Optional[str] = None,
    device: Optional[object] = None,
    shard_workers: Optional[int] = None,
    shard_executor: Optional[str] = None,
) -> InterferenceContext:
    """The shared :class:`InterferenceContext` for ``(instance, powers)``.

    Contexts are cached per instance — on the instance object itself,
    so dropping the instance lets the garbage collector reclaim its
    contexts — under the *value* of the power vector plus the resolved
    ``beta``/``noise`` defaults and the resolved gain backend, with a
    **global** LRU bound across all instances
    (:func:`context_cache_limit`, default
    :data:`DEFAULT_CONTEXT_CACHE_LIMIT`, env ``REPRO_CONTEXT_CACHE``) —
    so long runs over many instances hold bounded gain-matrix memory.
    Gains ``beta``/``noise`` are also per-query overrides on the
    returned context's methods, so querying at a rescaled gain does not
    fragment the cache; passing them *here* changes the context's
    defaults and therefore its cache slot (callers that rely on
    instance defaults never receive a context seeded with overrides).
    """
    global _hits, _misses
    powers_arr = np.asarray(powers, dtype=float)
    backend_name = resolve_backend(backend)
    epsilon = (
        resolve_sparse_epsilon(sparse_epsilon)
        if backend_name in ("sparse", "sharded")
        else 0.0
    )
    namespace = (
        resolve_array_namespace(array_namespace)
        if backend_name == "array"
        else ""
    )
    if backend_name != "array":
        device = None
    if backend_name == "sharded":
        workers = resolve_shard_workers(shard_workers)
        executor = resolve_shard_executor(shard_executor)
    else:
        workers, executor = 0, ""
    key = (
        powers_arr.tobytes(),
        instance.beta if beta is None else float(beta),
        instance.noise if noise is None else float(noise),
        backend_name,
        epsilon,
        namespace,
        "" if device is None else str(device),
        workers,
        executor,
    )
    with _lock:
        per_instance = getattr(instance, _CACHE_ATTR, None)
        if per_instance is None:
            per_instance = {}
            setattr(instance, _CACHE_ATTR, per_instance)
            _cached_instances.add(instance)
        context = per_instance.get(key)
        lru_key = (id(instance), key)
        if context is not None:
            _lru[lru_key] = _lru.pop(lru_key, None) or weakref.ref(instance)
            _hits += 1
            return context
        _misses += 1
        context = InterferenceContext(
            instance,
            powers_arr,
            beta=beta,
            noise=noise,
            backend=backend_name,
            sparse_epsilon=epsilon,
            array_namespace=namespace or None,
            device=device,
            shard_workers=workers or None,
            shard_executor=executor or None,
        )
        per_instance[key] = context
        _lru[lru_key] = weakref.ref(instance)
        _evict_over_limit()
        return context


def _context_key(context: InterferenceContext) -> tuple:
    """The cache key *context* occupies (must match :func:`get_context`)."""
    return (
        context.powers.tobytes(),
        context.beta,
        context.noise,
        context.backend_name,
        context.sparse_epsilon,
        context.array_namespace,
        "" if context.device is None else str(context.device),
        context.shard_workers,
        context.shard_executor,
    )


def repin_context(context: InterferenceContext) -> None:
    """Re-insert *context* as the cached entry for its key.

    Long-lived owners of a context (:class:`repro.api.Session`) hold a
    strong reference, but the global LRU may still have evicted its
    cache slot — after which :func:`get_context` would silently
    rebuild a *different* context with cold gain matrices (and a fresh
    flip-risk counter).  Re-pinning restores the owned context as the
    cache's entry (and marks it most-recently-used), so algorithm
    implementations resolving ``get_context(instance, powers)`` reuse
    the owner's warm state and the owner's certification counters see
    every at-risk comparison of the run.
    """
    instance = context.instance
    key = _context_key(context)
    with _lock:
        per_instance = getattr(instance, _CACHE_ATTR, None)
        if per_instance is None:
            per_instance = {}
            setattr(instance, _CACHE_ATTR, per_instance)
            _cached_instances.add(instance)
        per_instance[key] = context
        lru_key = (id(instance), key)
        _lru.pop(lru_key, None)
        _lru[lru_key] = weakref.ref(instance)
        _evict_over_limit()


def unpin_context(context: InterferenceContext) -> None:
    """Drop *context*'s cache slot (the inverse of :func:`repin_context`).

    Owners that replace their context (e.g.
    :meth:`repro.api.Session.add_requests` growing the instance) must
    release the old slot explicitly: the per-instance cache dict keeps
    the context (and through it the old instance) alive in a reference
    cycle until a *cycle* GC pass runs, and even after collection the
    dead key would keep occupying one global-LRU slot until it drifted
    to the eviction head — evicting still-live contexts early under
    ``REPRO_CONTEXT_CACHE`` pressure.  A no-op if the cached entry for
    the key is not *context* itself (never evicts a newer context that
    legitimately took the slot).
    """
    instance = context.instance
    key = _context_key(context)
    with _lock:
        per_instance = getattr(instance, _CACHE_ATTR, None)
        if per_instance is None or per_instance.get(key) is not context:
            return
        del per_instance[key]
        _lru.pop((id(instance), key), None)
        if not per_instance:
            delattr(instance, _CACHE_ATTR)
            _cached_instances.discard(instance)


def maybe_context(
    instance: Instance, powers: np.ndarray
) -> Optional[InterferenceContext]:
    """:func:`get_context` when the engine is enabled, else ``None``.

    The idiom for algorithms with a legacy fallback::

        ctx = maybe_context(instance, powers)
        if ctx is not None:
            ...  # cached fast path
        else:
            ...  # from-scratch path
    """
    if not _engine_enabled:
        return None
    return get_context(instance, powers)


def cache_info() -> Dict[str, int]:
    """Cache statistics: hits, misses, live instances, live contexts,
    and the global LRU limit."""
    with _lock:
        caches = [
            getattr(inst, _CACHE_ATTR, None) for inst in _cached_instances
        ]
        caches = [c for c in caches if c is not None]
        return {
            "hits": _hits,
            "misses": _misses,
            "instances": len(caches),
            "contexts": sum(len(c) for c in caches),
            "limit": _cache_limit,
        }


def clear_context_cache() -> None:
    """Drop every cached context and reset the hit/miss counters."""
    global _hits, _misses
    with _lock:
        for inst in list(_cached_instances):
            if hasattr(inst, _CACHE_ATTR):
                delattr(inst, _CACHE_ATTR)
        _cached_instances.clear()
        _lru.clear()
        _hits = 0
        _misses = 0
