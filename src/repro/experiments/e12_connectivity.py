"""E12 — [12]'s strong-connectivity workload on our schedulers.

Moscibroda-Wattenhofer: on worst-case point placements, uniform and
linear assignments need Omega(n) colors for connectivity requests
while good power control needs polylog(n).  The experiment schedules
MST-connectivity requests over (a) the exponential node chain (their
worst case) and (b) random deployments, under uniform / linear / sqrt
/ free powers.
"""

from __future__ import annotations

from typing import Sequence


from repro.core.instance import Direction
from repro.geometry.euclidean import EuclideanMetric
from repro.instances.connectivity import (
    exponential_node_chain,
    mst_connectivity_instance,
)
from repro.power.oblivious import LinearPower, SquareRootPower, UniformPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def run_connectivity(
    n_values: Sequence[int] = (8, 16, 32),
    trials: int = 2,
    beta: float = 0.5,
    rng: RngLike = 71,
) -> Table:
    """Colors needed for MST-connectivity under different assignments."""
    rng = ensure_rng(rng)
    table = Table(
        title="E12: [12] — strong-connectivity scheduling",
        columns=[
            "placement",
            "n_nodes",
            "uniform",
            "linear",
            "sqrt",
            "free_power",
        ],
    )
    table.add_note(
        "bidirectional MST requests; colors via first-fit per assignment, "
        f"beta={beta}"
    )
    assignments = (UniformPower(), LinearPower(), SquareRootPower())
    for n in n_values:
        placements = [("exp-chain", exponential_node_chain(n))]
        child = spawn_rngs(rng, 1)[0]
        placements.append(
            ("random-square", EuclideanMetric(child.uniform(0, 100, size=(n, 2))))
        )
        for name, metric in placements:
            instance = mst_connectivity_instance(
                metric, direction=Direction.BIDIRECTIONAL, beta=beta
            )
            row = {"placement": name, "n_nodes": n}
            for assignment in assignments:
                schedule = run_algorithm(
                    "first_fit", instance, powers=assignment(instance)
                ).schedule
                schedule.validate(instance)
                row[assignment.name] = schedule.num_colors
            free = run_algorithm("first_fit_free_power", instance).schedule
            free.validate(instance)
            row["free_power"] = free.num_colors
            table.add_row(**row)
    return table
SPEC = ExperimentSpec(
    id="e12",
    title="Strong-connectivity scheduling",
    runner="repro.experiments.e12_connectivity:run_connectivity",
    full={"n_values": (8, 16, 32), "trials": 2},
    fast={"n_values": (8,), "trials": 1},
    seed=71,
    shard_by="n_values",
    metric="free_power",
    algorithms=("first_fit", "first_fit_free_power"),
)
