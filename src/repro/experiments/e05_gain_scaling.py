"""E5 — Propositions 3 & 4: the cost of rescaling the gain.

Proposition 4 promises that making the gain stricter by a factor
``gamma'/gamma`` costs only ``O(gamma'/gamma * log n)`` colors.  The
experiment fixes random instances, colors them at gain ``gamma`` with
first-fit under the square-root assignment, then recolors at stricter
gains ``gamma' = s * gamma`` and compares the measured color blow-up
against the proven ``s * log n`` envelope.

Proposition 3 is measured through the size of the largest
stricter-gain class relative to ``gamma/(8 gamma') * n``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.runner.spec import ExperimentSpec
from repro.scheduling.registry import run_algorithm
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def run_gain_scaling(
    n: int = 40,
    scale_factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    trials: int = 3,
    base_gamma: float = 0.5,
    rng: RngLike = 7,
) -> Table:
    """Measure color blow-up and densest-class size under gain rescaling."""
    rng = ensure_rng(rng)
    table = Table(
        title="E5: Propositions 3 & 4 — gain rescaling",
        columns=[
            "scale",
            "colors_base",
            "colors_rescaled",
            "blowup",
            "envelope_s_logn",
            "densest_class",
            "prop3_bound",
        ],
    )
    table.add_note(
        f"n={n}, base gamma={base_gamma}; envelope = s * log2(n), "
        "prop3_bound = n * gamma/(8 gamma')"
    )
    children = spawn_rngs(rng, trials)
    instances = [random_uniform_instance(n, beta=base_gamma, rng=c) for c in children]
    power = SquareRootPower()
    base_schedules = [
        run_algorithm(
            "first_fit", inst, powers=power(inst), beta=base_gamma
        ).schedule
        for inst in instances
    ]
    for scale in scale_factors:
        gamma_target = base_gamma * scale
        blowups, colors_base, colors_new, densest = [], [], [], []
        for instance, base_sched in zip(instances, base_schedules):
            powers = power(instance)
            outcome = run_algorithm(
                "gain_scaling", instance, powers=powers,
                gamma_target=gamma_target,
            )
            rescaled = outcome.schedule
            rescaled.validate(instance, beta=gamma_target)
            subset = outcome.extras["densest_subset"]
            colors_base.append(base_sched.num_colors)
            colors_new.append(rescaled.num_colors)
            blowups.append(rescaled.num_colors / base_sched.num_colors)
            densest.append(subset.size)
        table.add_row(
            scale=scale,
            colors_base=float(np.mean(colors_base)),
            colors_rescaled=float(np.mean(colors_new)),
            blowup=float(np.mean(blowups)),
            envelope_s_logn=scale * math.log2(n),
            densest_class=float(np.mean(densest)),
            prop3_bound=n / (8.0 * scale),
        )
    return table
SPEC = ExperimentSpec(
    id="e5",
    title="Propositions 3 & 4 gain rescaling",
    runner="repro.experiments.e05_gain_scaling:run_gain_scaling",
    full={"n": 40, "trials": 3},
    fast={"n": 16, "trials": 1},
    seed=7,
    shard_by=None,
    metric="blowup",
    algorithms=("first_fit", "gain_scaling"),
)
