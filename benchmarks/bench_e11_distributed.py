"""E11 — regenerate the distributed-vs-centralized table (§6 open problem)."""

from repro.experiments import run_distributed


def test_e11_distributed(benchmark, save_table):
    table = benchmark.pedantic(
        run_distributed,
        kwargs=dict(n_values=(10, 20, 40), trials=2, rng=61),
        rounds=1,
        iterations=1,
    )
    save_table("e11_distributed", table)
    for row in table.rows:
        assert row["distributed_overhead"] >= 1.0
        assert row["protocol_slots"] >= row["distributed_colors"]
