"""Micro-benchmark: amortized sparse-backend growth under an arrival stream.

``SparseBackend.append_requests`` used to consolidate (hstack/vstack +
transpose rebuild) on **every** arrival — O(nnz) per admission, so a
stream of k arrivals cost O(k · nnz).  Growth is now deferred: arrival
strips accumulate as pending blocks and fold into the base CSR only
when a block-structured query (or the doubling rule) demands it, which
amortizes consolidation to O(log k) folds per stream.

This benchmark replays the same ``--arrivals`` (default 256) arrival
stream twice on a lossless sparse backend:

* **deferred** — the production path: plain ``append_requests`` calls,
  pending blocks folded lazily;
* **eager** — ``flush_growth()`` forced after every arrival, which
  reproduces the historical consolidate-per-arrival cost profile.

Gates (exit non-zero on violation):

* the deferred stream must finish within ``--max-fraction`` (default
  0.5) of the eager stream's wall time;
* after a final ``flush_growth()`` the deferred backend's matrices
  must be **bit-identical** to a cold rebuild on the grown instance
  (the lossless-growth contract of ``tests/core/test_gain_append.py``,
  re-checked here so the fast path cannot drift from the semantics).

The second-half/first-half wall-time ratio of the deferred stream is
reported (a consolidate-per-arrival regression drives it up) but not
gated — at micro-bench scale it is too noisy to fail a build on.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_sparse_growth.py
    PYTHONPATH=src python benchmarks/bench_sparse_growth.py \
        --base-n 512 --arrivals 128 --artifacts out/
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _prefix_instances(base_n: int, arrivals: int, seed: int):
    """The full grown instance plus every prefix the stream visits."""
    from repro.core.instance import Instance
    from repro.instances.random_instances import random_uniform_instance

    full = random_uniform_instance(
        base_n + arrivals, rng=seed, direction="directed"
    )

    def prefix(k: int) -> Instance:
        return Instance(
            full.metric,
            full.senders[:k],
            full.receivers[:k],
            direction=full.direction,
            alpha=full.alpha,
        )

    return full, prefix


def _replay_stream(prefix, powers_of, base_n, arrivals, eager: bool):
    """Build at ``base_n`` then append one request at a time; returns
    (backend, total_seconds, first_half_seconds, second_half_seconds)."""
    from repro.core.gains import SparseBackend

    backend = SparseBackend.build(
        prefix(base_n), powers_of(base_n), epsilon=0.0
    )
    half = arrivals // 2
    spans = [0.0, 0.0]
    start = time.perf_counter()
    for step in range(arrivals):
        k = base_n + step + 1
        tick = time.perf_counter()
        backend.append_requests(prefix(k), powers_of(k))
        if eager:
            backend.flush_growth()
        spans[step >= half] += time.perf_counter() - tick
    total = time.perf_counter() - start
    return backend, total, spans[0], spans[1]


def run(args) -> int:
    from repro.core.gains import SparseBackend
    from repro.power.oblivious import SquareRootPower

    failures = []
    run_start = time.perf_counter()
    full, prefix = _prefix_instances(args.base_n, args.arrivals, args.seed)
    sqrt_power = SquareRootPower()
    full_powers = np.asarray(sqrt_power(full), dtype=float)

    def powers_of(k: int) -> np.ndarray:
        # The sqrt assignment is per-request, hence prefix-stable.
        return full_powers[:k]

    deferred, deferred_s, first_half, second_half = _replay_stream(
        prefix, powers_of, args.base_n, args.arrivals, eager=False
    )
    eager_backend, eager_s, _, _ = _replay_stream(
        prefix, powers_of, args.base_n, args.arrivals, eager=True
    )
    half_ratio = second_half / first_half if first_half > 0 else float("nan")
    print(
        f"deferred stream: {deferred_s:.3f}s "
        f"(halves {first_half:.3f}s / {second_half:.3f}s, "
        f"ratio {half_ratio:.2f})"
    )
    print(f"eager stream:    {eager_s:.3f}s (flush_growth per arrival)")

    budget = args.max_fraction * eager_s
    print(
        f"gate: deferred within {args.max_fraction:.0%} of eager: "
        f"{deferred_s:.3f}s vs {budget:.3f}s"
    )
    if deferred_s > budget:
        failures.append(
            f"deferred growth stream took {deferred_s:.3f}s "
            f"(> {budget:.3f}s = {args.max_fraction:.0%} of the "
            f"{eager_s:.3f}s consolidate-per-arrival replay)"
        )

    # Bit-identity: fold everything and compare against a cold rebuild.
    deferred.flush_growth()
    n_final = args.base_n + args.arrivals
    cold = SparseBackend.build(
        prefix(n_final), powers_of(n_final), epsilon=0.0
    )
    if not np.array_equal(deferred.dense_u(), cold.dense_u()) or not (
        np.array_equal(deferred.dense_v(), cold.dense_v())
    ):
        failures.append(
            "deferred-growth backend diverged from a cold rebuild at "
            f"n={n_final} (lossless growth must be bit-identical)"
        )

    if args.artifacts is not None:
        from repro.runner.artifacts import (
            BenchReport,
            ShardResult,
            write_artifact,
        )
        from repro.util.tables import Table

        table = Table(
            title="Sparse backend growth: deferred vs per-arrival folds",
            columns=[
                "mode",
                "base_n",
                "arrivals",
                "seconds",
                "first_half_seconds",
                "second_half_seconds",
            ],
        )
        table.add_note(
            f"gate: deferred stream within {args.max_fraction:.0%} of the "
            "flush-per-arrival replay; final matrices bit-identical to a "
            "cold rebuild (epsilon=0)"
        )
        table.add_row(
            mode="deferred",
            base_n=args.base_n,
            arrivals=args.arrivals,
            seconds=deferred_s,
            first_half_seconds=first_half,
            second_half_seconds=second_half,
        )
        table.add_row(
            mode="eager",
            base_n=args.base_n,
            arrivals=args.arrivals,
            seconds=eager_s,
            first_half_seconds=float("nan"),
            second_half_seconds=float("nan"),
        )
        report = BenchReport(
            experiment="sparse_growth",
            title="Amortized sparse growth over an arrival stream",
            mode="smoke" if args.arrivals < 256 else "full",
            table=table,
            shards=[
                ShardResult(
                    key=f"deferred:{args.arrivals}",
                    seed=args.seed,
                    rows=1,
                    seconds=deferred_s,
                ),
                ShardResult(
                    key=f"eager:{args.arrivals}",
                    seed=args.seed,
                    rows=1,
                    seconds=eager_s,
                ),
            ],
            run_wall_seconds=time.perf_counter() - run_start,
            metric="seconds",
            backend="sparse",
        )
        write_artifact(args.artifacts, report)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: sparse growth gates passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base-n",
        type=int,
        default=1024,
        help="requests in the cold-built base backend (default 1024)",
    )
    parser.add_argument(
        "--arrivals",
        type=int,
        default=256,
        help="length of the one-request-at-a-time arrival stream "
        "(default 256)",
    )
    parser.add_argument(
        "--max-fraction",
        type=float,
        default=0.5,
        help="allowed fraction of the flush-per-arrival replay's wall "
        "time (default 0.5)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write BENCH_sparse_growth.json under DIR",
    )
    args = parser.parse_args(argv)
    if args.arrivals < 2:
        parser.error("--arrivals must be >= 2")
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
