"""Model invariants the paper relies on, tested with hypothesis.

§1.1 notes two structural facts used throughout the analysis:

* with sigma = 0, feasibility is invariant under scaling all powers;
* the SINR condition compares *ratios* of losses, so scaling all
  distances by a common factor leaves every margin unchanged.

Plus monotonicity facts the algorithms exploit: removing requests
never hurts, stricter gains never help, and the bidirectional
constraint dominates the directed one.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feasibility import sinr_margins
from repro.core.instance import Direction, Instance
from repro.geometry.euclidean import EuclideanMetric
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import MeanPower, SquareRootPower


def _random_instance(seed: int, n: int = 8) -> Instance:
    return random_uniform_instance(n, rng=seed)


class TestScaleInvariance:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), factor=st.floats(1e-3, 1e3))
    def test_power_scaling_preserves_margins(self, seed, factor):
        inst = _random_instance(seed)
        powers = SquareRootPower()(inst)
        base = sinr_margins(inst, powers)
        scaled = sinr_margins(inst, powers * factor)
        assert np.allclose(base, scaled, rtol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), factor=st.floats(0.1, 10.0))
    def test_distance_scaling_preserves_margins_at_fixed_powers(
        self, seed, factor
    ):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 50, size=(12, 2))
        pairs = [(2 * i, 2 * i + 1) for i in range(6)]
        a = Instance.bidirectional(EuclideanMetric(points), pairs)
        b = Instance.bidirectional(EuclideanMetric(points * factor), pairs)
        powers = np.ones(6)
        assert np.allclose(
            sinr_margins(a, powers), sinr_margins(b, powers), rtol=1e-9
        )


class TestMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_removing_requests_never_decreases_margins(self, seed):
        inst = _random_instance(seed)
        powers = SquareRootPower()(inst)
        full = sinr_margins(inst, powers)
        subset = list(range(0, inst.n, 2))
        partial = sinr_margins(inst, powers, subset=subset)
        for pos, req in enumerate(subset):
            assert partial[pos] >= full[req] - 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bidirectional_margins_dominate_directed(self, seed):
        bidir = _random_instance(seed)
        direct = bidir.with_direction(Direction.DIRECTED)
        powers = SquareRootPower()(bidir)
        assert np.all(
            sinr_margins(direct, powers) >= sinr_margins(bidir, powers) - 1e-12
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        tau=st.floats(0.0, 1.5),
    )
    def test_mean_power_family_produces_valid_margins(self, seed, tau):
        inst = _random_instance(seed)
        powers = MeanPower(tau)(inst)
        margins = sinr_margins(inst, powers)
        assert margins.shape == (inst.n,)
        assert np.all(margins >= 0)


class TestGainMonotonicity:
    def test_stricter_gain_scales_margins_down(self):
        inst = _random_instance(3)
        powers = SquareRootPower()(inst)
        loose = sinr_margins(inst, powers, beta=0.5)
        strict = sinr_margins(inst, powers, beta=2.0)
        assert np.allclose(strict, loose / 4.0)
