#!/usr/bin/env python
"""Theorem 1 live: build the lower-bound instance for *your* function.

Constructs the adaptive adversarial family for a user-supplied
oblivious power function, then shows (a) the function needing one
color per request and (b) a non-oblivious power assignment scheduling
everything in O(1) colors.

Run:  python examples/adversarial_construction.py
"""

import numpy as np

from repro import (
    FunctionPower,
    LinearPower,
    Problem,
    UniformPower,
    lower_bound_instance_for,
)


def main() -> None:
    # Any oblivious function works; try something exotic.
    exotic = FunctionPower(lambda loss: loss * np.log1p(loss), name="l*log(1+l)")

    for assignment in (UniformPower(), LinearPower(), exotic):
        print(f"=== assignment: {assignment.name} ===")
        adv = lower_bound_instance_for(assignment, n=16, kappa=128.0)
        instance = adv.instance
        print(f"  link lengths: {adv.link_lengths[0]:.3g} .. "
              f"{adv.link_lengths[-1]:.3g}")
        print(f"  gaps        : {adv.gaps[1]:.3g} .. {adv.gaps[-1]:.3g}")

        session = Problem(instance, powers=assignment).session()
        oblivious = session.schedule("first_fit").validate()
        free = session.schedule("first_fit_free_power").validate()
        print(f"  colors under {assignment.name:>10}: {oblivious.num_colors}")
        print(f"  colors under free powers: {free.num_colors}")
        print(f"  power spread of the free assignment: "
              f"{free.powers.max() / free.powers.min():.3g}\n")


if __name__ == "__main__":
    main()
