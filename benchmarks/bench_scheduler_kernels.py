"""Benchmark: vectorized scheduler kernels vs. the accumulator paths.

Times every scheduler the PR-3 kernel layer rewired — first-fit,
peeling, local search and ``sqrt_coloring`` — on the kernel path
(:mod:`repro.core.kernels`) and on the PR-1 accumulator /
subset-rebuild engine reference restored by
:func:`repro.core.kernels.kernels_disabled`.  Outputs are asserted
identical between the two paths, so the comparison is apples to
apples.  A batched row compares :meth:`ContextBatch.first_fit_schedules`
(lockstep over stacked gains) against the per-pair kernel loop, and a
second, gated batched row compares
:meth:`ContextBatch.local_search_schedules` (the
``stacked_local_search`` kernel, lockstep over (B,n,n) stacked gains)
against the per-instance looped ``improve_schedule`` reference path at
B=32, n=1024 — the PR-9 acceptance gate (>= ``--target``).  Both sides
of that row report best-of-2 wall time (see ``_time_min``) so the gate
measures steady-state throughput rather than first-touch page faults
on the (B, n, n) working set.

Shared engine state (cached gain matrices, signals) is warmed before
timing — both paths read the same cache, and this benchmark measures
the scheduler layer, not the PR-1 matrix build.  The kernel-only
transposed-gains cache is **not** pre-warmed; the kernel timings pay
for it.

``sqrt_coloring`` is run with ``use_lp=False``: the LP solve is
orthogonal to the interference machinery and costs the same on both
paths.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scheduler_kernels.py
    PYTHONPATH=src python benchmarks/bench_scheduler_kernels.py --sizes 64,256

The script exits non-zero when the first-fit speedup at the largest
``--sizes`` entry falls below ``--target`` (default 5x) — the PR-3
acceptance gate — or when the stacked local-search speedup over the
looped reference does (the PR-9 gate; ``--ls-batch-pairs 0`` disables
that row).  ``--aux-sizes`` bounds the other (ungated, slower)
workloads.

Reference results (one run, default sizes)::

    workload               n    reference      kernel   speedup
    first_fit             64        9.1 ms     14.8 ms      0.6x
    first_fit            256      104.3 ms     27.1 ms      3.8x
    first_fit           1024     1407.8 ms    217.1 ms      6.5x
    peeling               64       56.1 ms     19.2 ms      2.9x
    peeling              256      237.6 ms     75.4 ms      3.2x
    local_search          64        5.9 ms      4.4 ms      1.3x
    local_search         256      139.6 ms     20.8 ms      6.7x
    sqrt                  64        9.5 ms     12.9 ms      0.7x
    sqrt                 256      157.6 ms     92.7 ms      1.7x
    first_fit_batch4     256       74.9 ms     59.3 ms      1.3x
    local_search_batch32 1024   45687.3 ms   3279.5 ms     13.9x
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.batch import ContextBatch
from repro.core.context import clear_context_cache, get_context
from repro.core.kernels import kernels_disabled
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.runner.artifacts import BenchReport, ShardResult, write_artifact
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.local_search import improve_schedule
from repro.scheduling.peeling import peeling_schedule
from repro.scheduling.sqrt_coloring import sqrt_coloring
from repro.util.tables import Table

GATED_WORKLOAD = "first_fit"


def _warm(instance, powers):
    context = get_context(instance, powers)
    context.gains_u
    context.gains_v
    context.signals
    return context


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _time_min(fn, repeats=2):
    """Best-of-``repeats`` wall time (both paths are pure functions).

    Used for the batched local-search row, whose working set (a
    (B, n, n) stacked gain tensor plus lockstep state) is large enough
    that the first run is dominated by first-touch page faults rather
    than compute on freshly booted VMs.  The repeat reuses the freed
    pages, so the minimum reports steady-state throughput; both sides
    of the comparison are measured the same way.
    """
    best, result = _time(fn)
    for _ in range(repeats - 1):
        elapsed, result = _time(fn)
        best = min(best, elapsed)
    return best, result


def _colors(result):
    return result[0].colors if isinstance(result, tuple) else result.colors


def _workloads():
    def first_fit(instance, powers):
        return first_fit_schedule(instance, powers)

    def peeling(instance, powers):
        return peeling_schedule(instance, powers)

    def local_search(instance, powers):
        # The base schedule is path-independent (first-fit is
        # bit-identical across paths), so compute it outside the timer.
        base = first_fit_schedule(instance, powers)
        return lambda: improve_schedule(instance, base)

    def sqrt(instance, powers):
        return sqrt_coloring(instance, rng=3, use_lp=False)

    return {
        "first_fit": first_fit,
        "peeling": peeling,
        "local_search": local_search,
        "sqrt": sqrt,
    }


def run(
    sizes, aux_sizes, target, batch_pairs=4, ls_batch_pairs=32, seed=7,
    artifacts=None,
):
    run_start = time.perf_counter()
    workloads = _workloads()
    rows = []
    gated_speedup = None

    # Batched local search (gated): stacked lockstep kernel vs the
    # per-instance looped reference path (kernels_disabled) — the same
    # reference every per-instance row in this benchmark is measured
    # against, here paid once per instance in a loop.  This block runs
    # first (its row is still printed last): it is the largest resident
    # set in the benchmark (B stacked (n, n) matrices plus B warmed
    # contexts), and timing it before the other workloads churn the
    # heap keeps both timers on fresh, fragmentation-free memory.
    ls_row = None
    ls_speedup = None
    if ls_batch_pairs > 1 and sizes:
        n = sizes[-1]
        pairs = []
        for index in range(ls_batch_pairs):
            instance = random_uniform_instance(n, rng=seed + 200 + index)
            pairs.append((instance, SquareRootPower()(instance)))
        clear_context_cache()
        for instance, powers in pairs:
            _warm(instance, powers)
        # The seed schedules are path-independent (batched first-fit is
        # bit-identical to the per-pair loop); compute them outside both
        # timers via a throwaway batch so no per-context transpose
        # caches linger.  The stacked timer pays for its own stack
        # assembly.
        seed_batch = ContextBatch(pairs)
        seeds = seed_batch.first_fit_schedules()
        del seed_batch
        batch = ContextBatch(pairs)
        t_batch, improved = _time_min(
            lambda: batch.local_search_schedules(seeds)
        )
        with kernels_disabled():
            t_loop, references = _time_min(
                lambda: [
                    improve_schedule(inst, s)
                    for (inst, _), s in zip(pairs, seeds)
                ]
            )
        for schedule, reference in zip(improved, references):
            assert np.array_equal(schedule.colors, reference.colors), (
                "batched local search diverged from per-instance schedules"
            )
        ls_speedup = t_loop / t_batch if t_batch > 0 else float("inf")
        ls_row = (
            f"local_search_batch{ls_batch_pairs}", n, t_loop, t_batch,
            ls_speedup,
        )
        del batch, pairs, seeds, improved, references
        clear_context_cache()

    for name, runner in workloads.items():
        my_sizes = sizes if name == GATED_WORKLOAD else aux_sizes
        for n in my_sizes:
            instance = random_uniform_instance(n, rng=seed)
            powers = SquareRootPower()(instance)
            clear_context_cache()
            _warm(instance, powers)
            if name == "local_search":
                prepared = runner(instance, powers)
                t_kernel, rk = _time(prepared)
                with kernels_disabled():
                    t_reference, rr = _time(prepared)
            else:
                t_kernel, rk = _time(lambda: runner(instance, powers))
                with kernels_disabled():
                    t_reference, rr = _time(lambda: runner(instance, powers))
            assert np.array_equal(_colors(rk), _colors(rr)), (
                f"{name} outputs diverged at n={n}"
            )
            speedup = t_reference / t_kernel if t_kernel > 0 else float("inf")
            rows.append((name, n, t_reference, t_kernel, speedup))
            if name == GATED_WORKLOAD:
                gated_speedup = speedup  # sizes ascend; keeps the largest n

    # Batched first-fit: stacked lockstep kernel vs per-pair kernel loop.
    if batch_pairs > 1 and aux_sizes:
        n = aux_sizes[-1]
        pairs = []
        for index in range(batch_pairs):
            instance = random_uniform_instance(n, rng=seed + 100 + index)
            pairs.append((instance, SquareRootPower()(instance)))
        clear_context_cache()
        for instance, powers in pairs:
            _warm(instance, powers)
        batch = ContextBatch(pairs)
        t_batch, schedules = _time(batch.first_fit_schedules)
        t_loop, references = _time(
            lambda: [first_fit_schedule(inst, p) for inst, p in pairs]
        )
        for schedule, reference in zip(schedules, references):
            assert np.array_equal(schedule.colors, reference.colors), (
                "batched first-fit diverged from per-pair schedules"
            )
        speedup = t_loop / t_batch if t_batch > 0 else float("inf")
        rows.append((f"first_fit_batch{batch_pairs}", n, t_loop, t_batch, speedup))

    if ls_row is not None:
        rows.append(ls_row)

    print(f"{'workload':<18} {'n':>5} {'reference':>12} {'kernel':>11} {'speedup':>9}")
    for name, n, reference, kernel, speedup in rows:
        print(
            f"{name:<18} {n:>5} {reference * 1e3:>10.1f} ms {kernel * 1e3:>8.1f} ms "
            f"{speedup:>8.1f}x"
        )

    if artifacts is not None:
        table = Table(
            title="Scheduler kernels vs accumulator paths",
            columns=[
                "workload",
                "n",
                "reference_seconds",
                "kernel_seconds",
                "speedup",
            ],
        )
        table.add_note(
            f"gates: {GATED_WORKLOAD} >= {target}x at n={sizes[-1]}; "
            f"local_search_batch{ls_batch_pairs} (stacked lockstep vs "
            f"per-instance loop, best-of-2 per side) >= {target}x at "
            f"n={sizes[-1]}; "
            "reference = PR-1 accumulator/subset-rebuild engine paths "
            "(kernels_disabled); outputs asserted bit-identical"
        )
        shards = []
        for name, n, reference, kernel, speedup in rows:
            table.add_row(
                workload=name,
                n=n,
                reference_seconds=reference,
                kernel_seconds=kernel,
                speedup=speedup,
            )
            shards.append(
                ShardResult(
                    key=f"{name}:n={n}",
                    seed=seed,
                    rows=1,
                    seconds=reference + kernel,
                )
            )
        report = BenchReport(
            experiment="sched_kernels",
            title="Vectorized scheduler kernel speedup",
            mode="smoke",
            table=table,
            shards=shards,
            run_wall_seconds=time.perf_counter() - run_start,
            metric="speedup",
        )
        write_artifact(artifacts, report)

    if gated_speedup is None:
        print("FAIL: gated workload was not measured")
        return 1
    status = 0
    if gated_speedup < target:
        print(
            f"FAIL: {GATED_WORKLOAD} speedup {gated_speedup:.1f}x below "
            f"{target}x at n={sizes[-1]}"
        )
        status = 1
    else:
        print(f"OK: {GATED_WORKLOAD} >= {target}x at n={sizes[-1]}")
    if ls_speedup is not None:
        if ls_speedup < target:
            print(
                f"FAIL: stacked local search speedup {ls_speedup:.1f}x "
                f"below {target}x at B={ls_batch_pairs}, n={sizes[-1]}"
            )
            status = 1
        else:
            print(
                f"OK: stacked local search >= {target}x at "
                f"B={ls_batch_pairs}, n={sizes[-1]}"
            )
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="64,256,1024",
        help="comma-separated sizes for the gated first-fit workload (ascending)",
    )
    parser.add_argument(
        "--aux-sizes",
        default="64,256",
        help="comma-separated sizes for the ungated workloads (ascending)",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=5.0,
        help="required first-fit speedup at the largest --sizes entry",
    )
    parser.add_argument(
        "--batch-pairs",
        type=int,
        default=4,
        help="pairs in the batched first-fit row (0/1 disables it)",
    )
    parser.add_argument(
        "--ls-batch-pairs",
        type=int,
        default=32,
        help=(
            "pairs in the gated stacked local-search row "
            "(0/1 disables the row and its gate)"
        ),
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write BENCH_sched_kernels.json under DIR",
    )
    args = parser.parse_args(argv)
    sizes = sorted(int(s) for s in args.sizes.split(","))
    aux_sizes = sorted(int(s) for s in args.aux_sizes.split(",") if s)
    return run(
        sizes,
        aux_sizes,
        args.target,
        batch_pairs=args.batch_pairs,
        ls_batch_pairs=args.ls_batch_pairs,
        artifacts=args.artifacts,
    )


if __name__ == "__main__":
    sys.exit(main())
