"""Command-line experiment runner.

Regenerates any subset of the paper's experiment tables:

    python -m repro.experiments            # run everything (slow-ish)
    python -m repro.experiments e1 e2 e5   # run selected experiments
    python -m repro.experiments --list     # show what exists
    python -m repro.experiments e3 --fast  # reduced sizes for a smoke run
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    run_coloring_algorithm,
    run_connectivity,
    run_directed_lower_bound,
    run_directed_vs_bidirectional,
    run_distributed,
    run_energy_tradeoff,
    run_exact_certification,
    run_gain_scaling,
    run_iin_measure,
    run_nested_intuition,
    run_sqrt_universal,
    run_star_analysis,
    run_theorem2_literal,
    run_tree_embedding,
)
from repro.util.tables import format_table

_FULL: Dict[str, Callable] = {
    "e1": lambda: run_directed_lower_bound(n_values=(4, 8, 16, 24, 32)),
    "e2": lambda: run_nested_intuition(n_values=(5, 10, 20, 30, 40)),
    "e3": lambda: run_sqrt_universal(n_values=(10, 20, 40), trials=2),
    "e4": lambda: run_coloring_algorithm(n_values=(10, 20, 40), trials=2),
    "e5": lambda: run_gain_scaling(n=40, trials=3),
    "e6": lambda: run_star_analysis(m=60, trials=3),
    "e7": lambda: run_tree_embedding(n_values=(10, 20, 40), trials=2),
    "e8": lambda: run_directed_vs_bidirectional(n_values=(10, 20, 40), trials=2),
    "e9": lambda: run_energy_tradeoff(n=25, trials=3),
    "e10": lambda: run_iin_measure(n_values=(8, 16, 32)),
    "e3b": lambda: run_theorem2_literal(n_values=(10, 20, 40), trials=2),
    "e11": lambda: run_distributed(n_values=(10, 20, 40), trials=2),
    "e12": lambda: run_connectivity(n_values=(8, 16, 32), trials=2),
    "e13": lambda: run_exact_certification(n_values=(6, 8, 10), trials=3),
}

_FAST: Dict[str, Callable] = {
    "e1": lambda: run_directed_lower_bound(n_values=(4, 8)),
    "e2": lambda: run_nested_intuition(n_values=(5, 10)),
    "e3": lambda: run_sqrt_universal(n_values=(8,), trials=1),
    "e4": lambda: run_coloring_algorithm(n_values=(8,), trials=1),
    "e5": lambda: run_gain_scaling(n=16, trials=1),
    "e6": lambda: run_star_analysis(m=20, trials=1),
    "e7": lambda: run_tree_embedding(n_values=(8,), trials=1),
    "e8": lambda: run_directed_vs_bidirectional(n_values=(8,), trials=1),
    "e9": lambda: run_energy_tradeoff(n=10, trials=1),
    "e10": lambda: run_iin_measure(n_values=(8,)),
    "e3b": lambda: run_theorem2_literal(n_values=(8,), trials=1),
    "e11": lambda: run_distributed(n_values=(8,), trials=1),
    "e12": lambda: run_connectivity(n_values=(8,), trials=1),
    "e13": lambda: run_exact_certification(n_values=(6,), trials=1),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper-reproduction experiment tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e1 .. e10); all when omitted",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--fast", action="store_true", help="reduced sizes (smoke run)"
    )
    args = parser.parse_args(argv)

    registry = _FAST if args.fast else _FULL
    if args.list:
        for key in registry:
            print(key)
        return 0

    chosen = [e.lower() for e in args.experiments] or list(registry)
    unknown = [e for e in chosen if e not in registry]
    if unknown:
        parser.error(f"unknown experiment id(s): {', '.join(unknown)}")

    for key in chosen:
        table = registry[key]()
        print(format_table(table))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
