"""One-shot capacity: largest simultaneously-schedulable subsets.

Used by the nested-instance experiment (E2): how many of the requests
can share a single color under a given power assignment?  Finding the
maximum subset is NP-hard in general; :func:`greedy_max_feasible_subset`
implements the standard peeling heuristic — repeatedly drop the request
with the worst SINR margin until the remainder is feasible — which is
exact on the highly structured instances used in the experiments'
regimes of interest (geometric-series interference).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.context import InterferenceContext, maybe_context
from repro.core.feasibility import feasible_subset_mask, sinr_margins
from repro.core.instance import Instance
from repro.core.kernels import kernels_enabled, peel_max_feasible_subset


def greedy_max_feasible_subset(
    instance: Instance,
    powers: np.ndarray,
    candidates: Optional[Sequence[int]] = None,
    beta: Optional[float] = None,
    rtol: float = 1e-9,
    context: Optional[InterferenceContext] = None,
) -> np.ndarray:
    """A maximal feasible subset of *candidates* under fixed *powers*.

    Peels the worst-margin request until every remaining request meets
    its SINR constraint, then greedily re-adds dropped requests that
    still fit (so the result is inclusion-maximal).

    When the shared interference engine is enabled (or an explicit
    *context* for ``(instance, powers)`` is passed), the peeling loop
    runs on the cached gain matrices — by default via the incremental
    kernel :func:`repro.core.kernels.peel_max_feasible_subset`
    (identical decisions from maintained interference sums, O(k)
    vectorized work per round; near-boundary decisions re-resolved
    exactly and counted as ``peel_risk_events``); under
    :func:`repro.core.kernels.kernels_disabled` via the PR-1
    per-round-rebuild reference
    :meth:`InterferenceContext.greedy_max_feasible_subset`.
    """
    if context is None:
        context = maybe_context(instance, powers)
    if context is not None:
        if kernels_enabled():
            return peel_max_feasible_subset(
                context, candidates=candidates, beta=beta, rtol=rtol
            )
        return context.greedy_max_feasible_subset(
            candidates=candidates, beta=beta, rtol=rtol
        )
    if candidates is None:
        current = list(range(instance.n))
    else:
        current = [int(i) for i in candidates]
    powers = np.asarray(powers, dtype=float)
    dropped: list = []
    while current:
        subset = np.asarray(current, dtype=int)
        mask = feasible_subset_mask(instance, powers, subset, beta=beta, rtol=rtol)
        if np.all(mask):
            break
        margins = sinr_margins(instance, powers, subset=subset, beta=beta)
        worst = int(np.argmin(margins))
        dropped.append(current.pop(worst))
    # Maximality pass: re-add any dropped request that still fits.
    for req in reversed(dropped):
        trial = np.asarray(current + [req], dtype=int)
        if np.all(feasible_subset_mask(instance, powers, trial, beta=beta, rtol=rtol)):
            current.append(req)
    return np.asarray(sorted(current), dtype=int)


def one_shot_capacity(
    instance: Instance,
    powers: np.ndarray,
    beta: Optional[float] = None,
    rtol: float = 1e-9,
) -> int:
    """Size of the greedy maximal feasible subset (one-color capacity)."""
    return int(
        greedy_max_feasible_subset(instance, powers, beta=beta, rtol=rtol).size
    )
