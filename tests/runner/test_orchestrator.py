"""Tests for the batched experiment orchestrator.

Covers the three guarantees the runner makes: deterministic results
independent of worker count, a valid machine-readable artifact per
experiment, and full registry coverage in ``--fast`` smoke mode.
"""

import json

import pytest

from repro.experiments.registry import get_registry
from repro.runner.artifacts import (
    BenchReport,
    artifact_path,
    bench_from_dict,
    bench_to_dict,
    read_artifact,
)
from repro.runner.orchestrator import (
    available_experiments,
    resolve_specs,
    run_experiments,
    run_shard,
)
from repro.runner.spec import ExperimentSpec, derive_shard_seed, merge_tables
from repro.util.tables import Table

ALL_IDS = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
    "e3b", "e11", "e12", "e13",
]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert available_experiments() == ALL_IDS

    def test_specs_resolve_and_shard(self):
        for spec in get_registry().values():
            assert callable(spec.resolve())
            for fast in (False, True):
                shards = spec.shards(fast)
                assert len(shards) >= 1
                assert [s.index for s in shards] == list(range(len(shards)))
                if spec.seed is None:
                    assert all(s.seed is None for s in shards)
                else:
                    seeds = [s.seed for s in shards]
                    assert len(set(seeds)) == len(seeds)

    def test_resolve_specs_unknown_id(self):
        with pytest.raises(KeyError, match="e99"):
            resolve_specs(["e1", "e99"])

    def test_spec_rejects_pinned_rng(self):
        with pytest.raises(ValueError, match="rng"):
            ExperimentSpec(
                id="x", title="x", runner="m:f", full={"rng": 1}, seed=3
            )

    def test_spec_rejects_bad_shard_mode(self):
        with pytest.raises(ValueError, match="shard_by"):
            ExperimentSpec(id="x", title="x", runner="m:f", shard_by="trials")

    def test_shard_seeds_are_stable(self):
        assert derive_shard_seed(1234, 0) == derive_shard_seed(1234, 0)
        assert derive_shard_seed(1234, 0) != derive_shard_seed(1234, 1)
        assert derive_shard_seed(1234, 0) != derive_shard_seed(4321, 0)

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ExperimentSpec(id="x", title="x", runner="m:f", backend="gpu")
        # Valid pins are accepted.
        spec = ExperimentSpec(id="x", title="x", runner="m:f", backend="sparse")
        assert spec.backend == "sparse"


class TestBackendPlumbing:
    def test_run_records_backend_in_artifact(self, tmp_path):
        reports = run_experiments(
            ["e2"], fast=True, artifacts_dir=str(tmp_path), backend="sparse"
        )
        assert reports[0].backend == "sparse"
        payload = json.loads(artifact_path(tmp_path, "e2").read_text())
        assert payload["env"]["backend"] == "sparse"
        assert read_artifact(artifact_path(tmp_path, "e2")).backend == "sparse"

    def test_backend_choice_does_not_change_tables(self):
        """Default sparse is lossless, so experiment tables must be
        identical across backends."""
        dense = run_experiments(["e2"], fast=True, backend="dense")
        sparse = run_experiments(["e2"], fast=True, backend="sparse")
        assert bench_to_dict(dense[0])["table"] == (
            bench_to_dict(sparse[0])["table"]
        )
        assert dense[0].backend == "dense"
        assert sparse[0].backend == "sparse"

    def test_run_shard_applies_backend(self):
        table_dense, _ = run_shard("e2", True, 0, backend="dense")
        table_sparse, _ = run_shard("e2", True, 0, backend="sparse")
        assert table_dense.rows == table_sparse.rows

    def test_old_artifacts_read_as_dense(self):
        report = BenchReport(
            experiment="x",
            title="t",
            mode="fast",
            table=Table(title="t", columns=["a"]),
        )
        payload = bench_to_dict(report)
        del payload["env"]["backend"]  # pre-backend artifact
        assert bench_from_dict(payload).backend == "dense"


class TestDeterminism:
    # A representative subset keeps this test fast: sharded seeded
    # (e3), sharded seedless (e1), unsharded seeded (e5).
    SUBSET = ["e1", "e3", "e5"]

    def test_jobs_1_vs_jobs_4_bit_identical(self, tmp_path):
        seq = run_experiments(
            self.SUBSET, fast=True, jobs=1, artifacts_dir=tmp_path / "seq"
        )
        par = run_experiments(
            self.SUBSET, fast=True, jobs=4, artifacts_dir=tmp_path / "par"
        )
        for a, b in zip(seq, par):
            assert a.experiment == b.experiment
            assert a.table.title == b.table.title
            assert a.table.rows == b.table.rows
            assert a.table.notes == b.table.notes
        for experiment in self.SUBSET:
            a = json.loads(artifact_path(tmp_path / "seq", experiment).read_text())
            b = json.loads(artifact_path(tmp_path / "par", experiment).read_text())
            assert a["table"] == b["table"]
            assert a["shards"] is not None
            for s1, s4 in zip(a["shards"], b["shards"]):
                assert (s1["key"], s1["seed"], s1["rows"]) == (
                    s4["key"], s4["seed"], s4["rows"],
                )

    def test_run_shard_matches_orchestrated_row(self):
        table, seconds = run_shard("e3", True, 0)
        assert seconds >= 0
        report = run_experiments(["e3"], fast=True, jobs=1)[0]
        assert report.table.rows[: len(table)] == table.rows


class TestFastSmoke:
    def test_all_ids_produce_valid_artifacts(self, tmp_path):
        reports = run_experiments(fast=True, jobs=2, artifacts_dir=tmp_path)
        assert [r.experiment for r in reports] == ALL_IDS
        for report in reports:
            path = artifact_path(tmp_path, report.experiment)
            assert path.exists()
            loaded = read_artifact(path)
            assert loaded.experiment == report.experiment
            assert loaded.mode == "fast"
            assert loaded.table.rows == report.table.rows
            assert len(loaded.shards) == len(report.shards)
            payload = json.loads(path.read_text())
            for key in (
                "format_version", "kind", "experiment", "title", "mode",
                "table", "shards", "timings", "metrics", "env",
            ):
                assert key in payload, f"{report.experiment}: missing {key}"
            assert payload["kind"] == "bench"
            assert payload["metrics"]["rows"] == len(report.table)


class TestArtifacts:
    def test_round_trip_preserves_everything_deterministic(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(a=1, b=0.25)
        table.add_row(a=2, b=float("inf"))
        table.add_note("note")
        report = BenchReport(
            experiment="ex",
            title="Example",
            mode="fast",
            table=table,
            run_wall_seconds=1.5,
            jobs=3,
            metric="b",
        )
        payload = bench_to_dict(report)
        clone = bench_from_dict(json.loads(json.dumps(payload)))
        assert bench_to_dict(clone) == payload

    def test_metrics_skip_non_finite(self):
        table = Table(title="t", columns=["m"])
        table.add_row(m=2.0)
        table.add_row(m=float("inf"))
        report = BenchReport(
            experiment="ex", title="t", mode="full", table=table, metric="m"
        )
        metrics = report.metrics()
        assert metrics["rows"] == 2
        assert metrics["m_mean"] == 2.0

    def test_bad_kind_rejected(self):
        from repro.serialization import SerializationError

        with pytest.raises(SerializationError):
            bench_from_dict({"kind": "nope"})


class TestMergeTables:
    def test_merge_preserves_order_and_dedupes_notes(self):
        t1 = Table(title="T", columns=["x"])
        t1.add_row(x=1)
        t1.add_note("shared")
        t2 = Table(title="T", columns=["x"])
        t2.add_row(x=2)
        t2.add_note("shared")
        t2.add_note("extra")
        merged = merge_tables([t1, t2])
        assert merged.column("x") == [1, 2]
        assert merged.notes == ["shared", "extra"]

    def test_merge_rejects_column_mismatch(self):
        t1 = Table(title="T", columns=["x"])
        t2 = Table(title="T", columns=["y"])
        with pytest.raises(ValueError):
            merge_tables([t1, t2])


class TestErrors:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_experiments(["e1"], jobs=0)
