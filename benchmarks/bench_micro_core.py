"""Micro-benchmarks of the library's hot paths.

These are conventional performance benchmarks (not experiment
regenerations): interference matrices, feasibility checks, spectral
feasibility, first-fit coloring and HST construction at realistic
sizes.
"""

import numpy as np
import pytest

from repro.analysis.power_control import free_power_spectral_radius
from repro.core.feasibility import sinr_margins
from repro.core.interference import bidirectional_gain_matrices
from repro.embedding.hst import build_hst
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.sqrt_coloring import sqrt_coloring


@pytest.fixture(scope="module")
def instance_100():
    return random_uniform_instance(100, rng=0)


@pytest.fixture(scope="module")
def powers_100(instance_100):
    return SquareRootPower()(instance_100)


def test_gain_matrices_100(benchmark, instance_100, powers_100):
    benchmark(bidirectional_gain_matrices, instance_100, powers_100)


def test_sinr_margins_100(benchmark, instance_100, powers_100):
    colors = np.zeros(instance_100.n, dtype=int)
    benchmark(sinr_margins, instance_100, powers_100, colors)


def test_spectral_radius_100(benchmark, instance_100):
    benchmark(free_power_spectral_radius, instance_100)


def test_first_fit_100(benchmark, instance_100, powers_100):
    schedule = benchmark(first_fit_schedule, instance_100, powers_100)
    schedule.validate(instance_100)


def test_sqrt_coloring_50(benchmark):
    instance = random_uniform_instance(50, rng=1)
    schedule, _ = benchmark.pedantic(
        sqrt_coloring, args=(instance,), kwargs=dict(rng=1), rounds=1, iterations=1
    )
    schedule.validate(instance)


def test_hst_build_100(benchmark):
    instance = random_uniform_instance(50, rng=2)  # 100 points
    benchmark(build_hst, instance.metric, rng=3)
