"""Parallel experiment orchestrator.

Replaces the hand-rolled sequential loops of the old CLI: experiments
are expanded into :class:`~repro.runner.spec.Shard` units (per size,
with deterministically derived seeds), fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, and merged back into
one table per experiment **in shard order** — so the result is
bit-identical whether the run used one worker or many.

Workers re-resolve the shard from the experiment registry by
``(spec_id, mode, shard_index)``; only small picklable identifiers
cross the process boundary on the way in and a plain
:class:`~repro.util.tables.Table` on the way out.
"""

from __future__ import annotations

import contextlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.gains import backend_scope, resolve_backend
from repro.runner.artifacts import BenchReport, ShardResult, write_artifact
from repro.runner.spec import ExperimentSpec, Shard, merge_tables
from repro.util.tables import Table


def _registry() -> "Dict[str, ExperimentSpec]":
    # Imported lazily: the experiment modules import repro.runner.spec
    # for their SPEC declarations, so a module-level import here would
    # be circular.
    from repro.experiments.registry import get_registry

    return get_registry()


def available_experiments() -> List[str]:
    """Experiment ids in canonical (registry) order."""
    return list(_registry())


def resolve_specs(
    experiment_ids: Optional[Sequence[str]] = None,
) -> List[ExperimentSpec]:
    """Specs for *experiment_ids* (all, in registry order, when omitted).

    Raises ``KeyError`` naming the unknown ids otherwise.
    """
    registry = _registry()
    if not experiment_ids:
        return list(registry.values())
    chosen = [e.lower() for e in experiment_ids]
    unknown = sorted(set(chosen) - set(registry))
    if unknown:
        raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")
    return [registry[e] for e in chosen]


def run_shard(
    spec_id: str,
    fast: bool,
    shard_index: int,
    backend: Optional[str] = None,
) -> Tuple[Table, float]:
    """Execute one shard (in this process) and time it.

    *backend* is the resolved gain-backend name for this shard; it is
    applied process-locally (workers receive it explicitly, since the
    parent's :func:`repro.core.gains.set_default_backend` state does
    not cross the process boundary).
    """
    spec = _registry()[spec_id]
    shard = spec.shards(fast)[shard_index]
    run = spec.resolve()
    start = time.perf_counter()
    with backend_scope(backend):
        table = run(**shard.kwargs)
    return table, time.perf_counter() - start


def _init_worker(sys_path: List[str]) -> None:
    """Reproduce the parent's import path in spawned workers."""
    for entry in sys_path:
        if entry not in sys.path:
            sys.path.append(entry)


def run_experiments(
    experiment_ids: Optional[Sequence[str]] = None,
    fast: bool = False,
    jobs: int = 1,
    artifacts_dir: Optional[str] = None,
    on_report: Optional[Callable[[BenchReport], None]] = None,
    backend: Optional[str] = None,
) -> List[BenchReport]:
    """Run experiments, in parallel across shards, and merge results.

    Experiments are reported **as they complete**, in spec order: each
    experiment's artifact is written (and *on_report* called) as soon
    as its last shard finishes, so a failure or interruption late in a
    long run does not discard the experiments already done.

    Parameters
    ----------
    experiment_ids:
        Ids to run (default: every registered experiment).
    fast:
        Use each spec's reduced smoke parameters.
    jobs:
        Worker processes.  ``1`` runs everything in-process; results
        are identical either way (seeds and merge order are derived
        from the specs alone).
    artifacts_dir:
        When given, one ``BENCH_<id>.json`` per experiment is written
        there (see :mod:`repro.runner.artifacts`).
    on_report:
        Optional callback invoked with each experiment's
        :class:`BenchReport` as soon as it is complete (the CLI uses
        this to stream tables).
    backend:
        Run-level gain-backend choice (the CLI ``--backend`` flag).  A
        spec's own ``backend`` pin wins over this; ``None`` falls back
        to the process default, so ``REPRO_BACKEND=sparse`` flips a
        whole run.  The resolved name is recorded per experiment in
        the artifact's ``env`` section.

    Returns
    -------
    One :class:`BenchReport` per experiment, in request order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    specs = resolve_specs(experiment_ids)
    mode = "fast" if fast else "full"
    plan: List[Tuple[ExperimentSpec, List[Shard]]] = [
        (spec, spec.shards(fast)) for spec in specs
    ]
    # Resolve each spec's backend up front: spec pin > run-level choice
    # > process default.  Workers receive the resolved name explicitly.
    backends: Dict[str, str] = {
        spec.id: resolve_backend(spec.backend or backend) for spec, _ in plan
    }

    start = time.perf_counter()
    reports: List[BenchReport] = []
    # Memoized per (spec id, shard index): duplicate experiment ids in
    # the request reuse one computation instead of re-running shards.
    done: Dict[Tuple[str, int], Tuple[Table, float]] = {}
    with contextlib.ExitStack() as stack:
        if jobs == 1:
            def result_for(spec_id: str, shard_index: int) -> Tuple[Table, float]:
                key = (spec_id, shard_index)
                if key not in done:
                    done[key] = run_shard(
                        spec_id, fast, shard_index, backend=backends[spec_id]
                    )
                return done[key]
        else:
            pool = stack.enter_context(
                ProcessPoolExecutor(
                    max_workers=jobs,
                    initializer=_init_worker,
                    initargs=(list(sys.path),),
                )
            )
            futures: Dict[Tuple[str, int], object] = {}
            for spec, shards in plan:
                for shard in shards:
                    key = (spec.id, shard.index)
                    if key not in futures:
                        futures[key] = pool.submit(
                            run_shard,
                            spec.id,
                            fast,
                            shard.index,
                            backend=backends[spec.id],
                        )

            def result_for(spec_id: str, shard_index: int) -> Tuple[Table, float]:
                return futures[(spec_id, shard_index)].result()

        for spec, shards in plan:
            shard_outputs = [result_for(spec.id, shard.index) for shard in shards]
            report = BenchReport(
                experiment=spec.id,
                title=spec.title,
                mode=mode,
                table=merge_tables([table for table, _ in shard_outputs]),
                shards=[
                    ShardResult(
                        key=shard.key,
                        seed=shard.seed,
                        rows=len(table),
                        seconds=seconds,
                    )
                    for shard, (table, seconds) in zip(shards, shard_outputs)
                ],
                run_wall_seconds=time.perf_counter() - start,
                jobs=jobs,
                metric=spec.metric,
                backend=backends[spec.id],
                algorithms=tuple(spec.algorithms),
            )
            if artifacts_dir is not None:
                write_artifact(artifacts_dir, report)
            reports.append(report)
            if on_report is not None:
                on_report(report)
    return reports
