"""Tests for the multi-hop routing + layered scheduling extension."""

import numpy as np
import pytest

from repro.geometry.euclidean import EuclideanMetric
from repro.geometry.line import LineMetric
from repro.multihop.routing import (
    RoutingError,
    connectivity_graph,
    route_requests,
)
from repro.multihop.scheduling import layered_multihop_schedule


@pytest.fixture
def line_network():
    # Nodes every 10 units; range 15 connects only neighbours.
    return LineMetric([0.0, 10.0, 20.0, 30.0, 40.0])


class TestConnectivityGraph:
    def test_neighbours_connected(self, line_network):
        graph = connectivity_graph(line_network, transmission_range=15.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_edge_weights_are_distances(self, line_network):
        graph = connectivity_graph(line_network, transmission_range=15.0)
        assert graph[0][1]["weight"] == pytest.approx(10.0)

    def test_invalid_range(self, line_network):
        with pytest.raises(ValueError):
            connectivity_graph(line_network, transmission_range=0.0)


class TestRouting:
    def test_multi_hop_path(self, line_network):
        routes = route_requests(line_network, [(0, 4)], transmission_range=15.0)
        assert routes[0].path == [0, 1, 2, 3, 4]
        assert routes[0].hop_count == 4
        assert routes[0].hops[0] == (0, 1)

    def test_direct_when_in_range(self, line_network):
        routes = route_requests(line_network, [(0, 2)], transmission_range=25.0)
        assert routes[0].path == [0, 2]

    def test_no_route_raises(self, line_network):
        with pytest.raises(RoutingError):
            route_requests(line_network, [(0, 4)], transmission_range=5.0)

    def test_self_request_rejected(self, line_network):
        with pytest.raises(ValueError):
            route_requests(line_network, [(2, 2)], transmission_range=15.0)

    def test_shortest_by_distance(self, rng):
        # Triangle: direct long edge vs two short hops; the router must
        # pick the geometrically shorter path.
        metric = EuclideanMetric([[0, 0], [5, 1], [10, 0]])
        routes = route_requests(metric, [(0, 2)], transmission_range=11.0)
        assert routes[0].path == [0, 2]  # direct distance 10 < 5.1 + 5.1


class TestLayeredScheduling:
    def test_latencies_respect_hops(self, line_network):
        routes = route_requests(
            line_network, [(0, 4), (1, 2)], transmission_range=15.0
        )
        result = layered_multihop_schedule(line_network, routes)
        # Request 0 needs 4 hops -> latency at least 4 slots.
        assert result.latencies[0] >= 4
        assert result.latencies[1] >= 1
        assert result.max_latency == result.total_slots or (
            result.max_latency <= result.total_slots
        )

    def test_all_layer_schedules_feasible(self, line_network):
        routes = route_requests(line_network, [(0, 4), (4, 0)], 15.0)
        result = layered_multihop_schedule(line_network, routes)
        assert result.layer_schedules  # verified inside the scheduler

    def test_hop_slots_increase_along_route(self, line_network):
        routes = route_requests(line_network, [(0, 4)], 15.0)
        result = layered_multihop_schedule(line_network, routes)
        slots = [result.hop_slot[(0, h)] for h in range(4)]
        assert slots == sorted(slots)
        assert len(set(slots)) == 4

    def test_total_slots_is_sum_of_layers(self, line_network):
        routes = route_requests(line_network, [(0, 3), (1, 4)], 15.0)
        result = layered_multihop_schedule(line_network, routes)
        assert result.total_slots == sum(result.layer_slots)

    def test_single_hop_request(self, line_network):
        routes = route_requests(line_network, [(0, 1)], 15.0)
        result = layered_multihop_schedule(line_network, routes)
        assert result.total_slots == 1
        assert result.latencies == [1]

    def test_empty_routes_rejected(self, line_network):
        with pytest.raises(ValueError):
            layered_multihop_schedule(line_network, [])

    def test_mean_latency(self, line_network):
        routes = route_requests(line_network, [(0, 2), (2, 4)], 15.0)
        result = layered_multihop_schedule(line_network, routes)
        assert result.mean_latency == pytest.approx(np.mean(result.latencies))

    def test_random_network_end_to_end(self, rng):
        points = rng.uniform(0, 60, size=(25, 2))
        metric = EuclideanMetric(points)
        requests = [(0, 24), (5, 20), (10, 15)]
        routes = route_requests(metric, requests, transmission_range=30.0)
        result = layered_multihop_schedule(metric, routes)
        assert all(lat >= r.hop_count for lat, r in zip(result.latencies, routes))
