"""The Problem/Session/ScheduleResult facade and its batch entry points."""

import numpy as np
import pytest

from repro.api import BatchSession, Problem, ScheduleResult, Session, schedule_batch
from repro.core.batch import BatchFallbackInfo
from repro.core.context import clear_context_cache, engine_disabled
from repro.core.errors import InvalidScheduleError
from repro.instances.random_instances import random_uniform_instance
from repro.power.oblivious import SquareRootPower, UniformPower
from repro.scheduling.firstfit import first_fit_schedule
from repro.scheduling.sqrt_coloring import sqrt_coloring


@pytest.fixture
def instance():
    return random_uniform_instance(12, rng=7)


@pytest.fixture
def powers(instance):
    return SquareRootPower()(instance)


class TestProblem:
    def test_bad_backend_fails_at_construction(self, instance):
        with pytest.raises(ValueError, match="dense"):
            Problem(instance, backend="gpu")

    def test_bad_epsilon_fails_at_construction(self, instance):
        with pytest.raises(ValueError, match="epsilon"):
            Problem(instance, sparse_epsilon=1.5)

    def test_session_from_instance_directly(self, instance):
        result = Session(instance).schedule("first_fit")
        assert isinstance(result, ScheduleResult)

    def test_default_powers_are_square_root(self, instance, powers):
        session = Problem(instance).session()
        np.testing.assert_array_equal(session.powers, powers)

    def test_assignment_powers(self, instance):
        session = Problem(instance, powers=UniformPower()).session()
        np.testing.assert_array_equal(
            session.powers, UniformPower()(instance)
        )


class TestSessionSchedule:
    def test_bit_identical_to_free_function(self, instance, powers):
        result = Problem(instance).session().schedule("first_fit")
        ref = first_fit_schedule(instance, powers)
        np.testing.assert_array_equal(result.colors, ref.colors)
        np.testing.assert_array_equal(result.powers, ref.powers)

    def test_result_properties_and_validate(self, instance):
        result = Problem(instance).session().schedule("first_fit")
        assert result.num_colors == result.schedule.num_colors
        assert result.validate() is result

    def test_provenance_fields(self, instance):
        result = (
            Problem(instance, backend="dense").session().schedule("first_fit")
        )
        prov = result.provenance
        assert prov.algorithm == "first_fit"
        assert prov.backend == "dense"
        assert prov.engine is True
        assert prov.kernels is True
        assert prov.wall_seconds >= 0.0
        assert prov.flip_risk_events == 0
        assert prov.certified is True  # dense, certifiable algorithm
        assert prov.batch_fallback is None
        assert prov.peel_risk_events == 0  # first-fit never peels
        assert prov.peel_fallbacks == ()

    def test_non_certifiable_algorithm_has_no_verdict(self, instance):
        result = Problem(instance).session().schedule("peeling")
        assert result.provenance.certified is None

    def test_peel_counters_scoped_per_run(self, instance):
        """Peel provenance is a per-run delta of the module totals, so
        events from earlier runs must not bleed into later results."""
        from repro.core import kernels

        session = Problem(instance).session()
        first = session.schedule("peeling")
        assert first.provenance.peel_risk_events >= 0
        assert first.provenance.peel_fallbacks == ()
        total = kernels.peel_risk_events()
        second = session.schedule("peeling")
        # Same instance, same peel: the per-run delta equals the first
        # run's count, not the accumulated total.
        assert (
            second.provenance.peel_risk_events
            == first.provenance.peel_risk_events
        )
        assert kernels.peel_risk_events() >= total

    def test_params_recorded(self, instance):
        result = (
            Problem(instance)
            .session()
            .schedule("gain_scaling", gamma_target=2.0)
        )
        assert result.provenance.params == {"gamma_target": 2.0}

    def test_randomized_algorithm_matches_impl(self, instance):
        result = Problem(instance).session().schedule("sqrt_coloring", rng=42)
        ref, stats = sqrt_coloring(instance, rng=42)
        np.testing.assert_array_equal(result.colors, ref.colors)
        assert result.stats.rounds == stats.rounds

    def test_local_search_accepts_schedule_result(self, instance):
        session = Problem(instance).session()
        base = session.schedule("first_fit")
        improved = session.schedule("local_search", schedule=base)
        assert improved.num_colors <= base.num_colors

    def test_engine_disabled_still_works(self, instance, powers):
        with engine_disabled():
            result = Problem(instance).session().schedule("first_fit")
            assert result.provenance.engine is False
            assert result.provenance.certified is None
        ref = first_fit_schedule(instance, powers)
        np.testing.assert_array_equal(result.colors, ref.colors)

    def test_sparse_session_certified_and_identical(self, instance):
        clear_context_cache()
        dense = (
            Problem(instance, backend="dense").session().schedule("first_fit")
        )
        sparse = (
            Problem(instance, backend="sparse").session().schedule("first_fit")
        )
        np.testing.assert_array_equal(sparse.colors, dense.colors)
        assert sparse.provenance.backend == "sparse"
        assert sparse.provenance.sparse_epsilon == 0.0
        assert sparse.provenance.certified is True

    def test_non_querying_algorithm_skips_context_build(self, instance):
        session = Problem(instance).session()
        session.schedule("trivial")
        # trivial issues no interference queries; the O(n^2) gain
        # matrices must not be materialized just for provenance.
        assert session._context is None

    def test_last_result_and_repr(self, instance):
        session = Problem(instance).session()
        assert session.last_result is None
        result = session.schedule("first_fit")
        assert session.last_result is result
        assert "first_fit" in repr(session)


class TestIncremental:
    def test_reschedule_without_history_fails(self, instance):
        with pytest.raises(ValueError, match="reschedule"):
            Problem(instance).session().reschedule()

    def test_add_requests_reresolves_assignment_powers(self):
        instance = random_uniform_instance(8, rng=1)
        session = Problem(instance).session()
        first = session.schedule("first_fit")
        session.add_requests([(0, 3), (2, 7)])
        assert session.instance.n == 10
        assert session.powers.shape == (10,)
        np.testing.assert_array_equal(
            session.powers, SquareRootPower()(session.instance)
        )
        second = session.reschedule()
        assert second.provenance.algorithm == "first_fit"
        # The grown schedule is exactly the from-scratch schedule of
        # the grown instance.
        ref = first_fit_schedule(session.instance, session.powers)
        np.testing.assert_array_equal(second.colors, ref.colors)
        assert first.schedule.n == 8 and second.schedule.n == 10

    def test_add_requests_explicit_powers(self):
        instance = random_uniform_instance(8, rng=2)
        powers = SquareRootPower()(instance)
        session = Problem(instance, powers=powers).session()
        with pytest.raises(ValueError, match="powers="):
            session.add_requests([(0, 3)])
        session.add_requests([(0, 3)], powers=[1.5])
        assert session.powers[-1] == 1.5
        with pytest.raises(ValueError, match="1 new request"):
            session.add_requests([(1, 4)], powers=[1.0, 2.0])

    def test_add_requests_rejects_powers_with_assignment(self, instance):
        session = Problem(instance).session()
        with pytest.raises(ValueError, match="assignment"):
            session.add_requests([(0, 1)], powers=[1.0])

    def test_add_nothing_is_a_noop(self, instance):
        session = Problem(instance).session()
        handles = session.add_requests([])
        assert list(handles) == []
        assert session.instance is instance

    def test_reschedule_replays_last_params(self, instance):
        session = Problem(instance).session()
        first = session.schedule("gain_scaling", gamma_target=2.0)
        session.add_requests([(0, 5)])
        # Required params of the last call are replayed, not dropped.
        again = session.reschedule()
        assert again.provenance.algorithm == "gain_scaling"
        assert again.provenance.params == {"gamma_target": 2.0}
        assert first.schedule.n < again.schedule.n
        # Explicit overrides win over the replayed params.
        stricter = session.reschedule(gamma_target=4.0)
        assert stricter.provenance.params == {"gamma_target": 4.0}

    def test_reschedule_with_algorithm_starts_fresh(self, instance):
        session = Problem(instance).session()
        session.schedule("gain_scaling", gamma_target=2.0)
        fresh = session.reschedule("first_fit")
        assert fresh.provenance.params == {}


class TestBatchSession:
    def _problems(self, count=3, n=10):
        # Backend pinned dense: the stacked path is dense-only, and the
        # suite must behave identically under REPRO_BACKEND=sparse.
        return [
            Problem(random_uniform_instance(n, rng=100 + i), backend="dense")
            for i in range(count)
        ]

    def test_stacked_first_fit_matches_per_pair(self):
        problems = self._problems()
        results = BatchSession(problems).schedule("first_fit")
        assert len(results) == 3
        for problem, result in zip(problems, results):
            ref = first_fit_schedule(
                problem.instance, SquareRootPower()(problem.instance)
            )
            np.testing.assert_array_equal(result.colors, ref.colors)
            assert result.provenance.batch_fallback is None
            assert result.provenance.certified is True

    def test_ragged_batch_records_fallback(self):
        problems = [
            Problem(random_uniform_instance(10, rng=0), backend="dense"),
            Problem(random_uniform_instance(6, rng=1), backend="dense"),
        ]
        results = BatchSession(problems).schedule("first_fit")
        info = results[0].provenance.batch_fallback
        assert isinstance(info, BatchFallbackInfo)
        assert "ragged_n" in info.reasons
        for problem, result in zip(problems, results):
            ref = first_fit_schedule(
                problem.instance, SquareRootPower()(problem.instance)
            )
            np.testing.assert_array_equal(result.colors, ref.colors)

    def test_unbatchable_algorithm_loops_sessions(self):
        results = BatchSession(self._problems()).schedule("peeling")
        for result in results:
            assert result.provenance.batch_fallback.reasons == (
                "no_batch_kernel",
            )
            assert result.provenance.algorithm == "peeling"

    def test_randomized_fanout_is_seed_deterministic(self):
        problems = self._problems()
        a = BatchSession(problems).schedule("sqrt_coloring", rng=9)
        b = BatchSession(problems).schedule("sqrt_coloring", rng=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.colors, y.colors)

    def test_deterministic_batch_rejects_rng(self):
        with pytest.raises(TypeError, match="deterministic"):
            BatchSession(self._problems()).schedule("first_fit", rng=42)

    def test_mixed_backend_preferences_rejected(self):
        problems = [
            Problem(random_uniform_instance(8, rng=0), backend="dense"),
            Problem(random_uniform_instance(8, rng=1), backend="sparse"),
        ]
        with pytest.raises(ValueError, match="backend"):
            BatchSession(problems)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchSession([])

    def test_validate_roundtrip(self):
        batch = BatchSession(self._problems())
        with pytest.raises(InvalidScheduleError, match="schedule"):
            batch.validate()
        batch.schedule("first_fit")
        assert batch.validate() is batch

    def test_schedule_batch_convenience(self):
        problems = self._problems(count=2)
        results = schedule_batch(problems, "first_fit")
        assert [r.num_colors for r in results] == [
            r.num_colors
            for r in BatchSession(problems).schedule("first_fit")
        ]

    def test_instances_accepted_directly(self):
        instances = [random_uniform_instance(8, rng=i) for i in range(2)]
        results = schedule_batch(instances)
        assert len(results) == 2
