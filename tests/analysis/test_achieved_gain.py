"""Tests for achieved-gain analysis."""

import numpy as np
import pytest

from repro.analysis.achieved_gain import (
    achieved_gain,
    nodeloss_achieved_gain,
    per_class_achieved_gains,
    schedule_achieved_gain,
)
from repro.core.feasibility import is_feasible_partition
from repro.core.schedule import Schedule
from repro.nodeloss.instance import NodeLossInstance
from repro.power.oblivious import SquareRootPower
from repro.scheduling.firstfit import first_fit_schedule


class TestAchievedGain:
    def test_two_far_links(self, two_link_instance):
        gain = achieved_gain(two_link_instance, np.ones(2))
        # signal 1, interference 1/99^3.
        assert gain == pytest.approx(99.0**3)

    def test_isolated_request_infinite(self, two_link_instance):
        assert achieved_gain(two_link_instance, np.ones(2), subset=[0]) == np.inf

    def test_schedule_is_feasible_exactly_up_to_achieved_gain(
        self, small_random_instance
    ):
        powers = SquareRootPower()(small_random_instance)
        schedule = first_fit_schedule(small_random_instance, powers)
        gain = schedule_achieved_gain(small_random_instance, schedule)
        assert is_feasible_partition(
            small_random_instance, schedule.powers, schedule.colors, beta=gain * 0.999
        )
        if np.isfinite(gain):
            assert not is_feasible_partition(
                small_random_instance,
                schedule.powers,
                schedule.colors,
                beta=gain * 1.001,
            )

    def test_per_class_gains_at_least_overall(self, small_random_instance):
        powers = SquareRootPower()(small_random_instance)
        schedule = first_fit_schedule(small_random_instance, powers)
        overall = schedule_achieved_gain(small_random_instance, schedule)
        per_class = per_class_achieved_gains(small_random_instance, schedule)
        assert min(per_class.values()) == pytest.approx(overall)

    def test_singleton_classes_have_infinite_gain(self, two_link_instance):
        schedule = Schedule(colors=np.array([0, 1]), powers=np.ones(2))
        gains = per_class_achieved_gains(two_link_instance, schedule)
        assert gains[0] == np.inf
        assert gains[1] == np.inf


class TestNodeLossAchievedGain:
    def test_matches_margins(self):
        distances = np.array([[0.0, 10.0], [10.0, 0.0]])
        inst = NodeLossInstance(distances, [8.0, 8.0], alpha=3.0)
        gain = nodeloss_achieved_gain(inst, inst.sqrt_powers())
        # signal = sqrt(8)/8; interference = sqrt(8)/1000.
        assert gain == pytest.approx(1000.0 / 8.0)
