"""Metric given by an explicit, validated distance matrix."""

from __future__ import annotations

import numpy as np

from repro.geometry.metric import Metric, is_metric_matrix


class ExplicitMetric(Metric):
    """A metric defined by an explicit ``(n, n)`` distance matrix.

    Parameters
    ----------
    matrix:
        Square, symmetric, zero-diagonal, non-negative array.
    validate_triangle:
        When ``True`` (default) also verify the triangle inequality,
        which costs O(n^3).  Disable for large matrices known-good by
        construction.
    """

    def __init__(self, matrix: np.ndarray, validate_triangle: bool = True):
        super().__init__()
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        if matrix.shape[0] == 0:
            raise ValueError("metric must have at least one node")
        if not np.all(np.isfinite(matrix)):
            raise ValueError("distances must be finite")
        if not np.allclose(np.diag(matrix), 0.0):
            raise ValueError("diagonal must be zero")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("matrix must be symmetric")
        if np.any(matrix < 0):
            raise ValueError("distances must be non-negative")
        if validate_triangle and not is_metric_matrix(matrix):
            raise ValueError("matrix violates the triangle inequality")
        self._matrix = matrix.copy()
        self._matrix.setflags(write=False)

    @property
    def n(self) -> int:
        return self._matrix.shape[0]

    def _compute_matrix(self) -> np.ndarray:
        return self._matrix
