"""Batched interference queries across many ``(instance, powers)`` pairs.

:class:`repro.core.context.InterferenceContext` answers every query for
*one* ``(instance, powers)`` pair from cached gain matrices.  Workloads
that evaluate **many** pairs at once — validating all trial schedules of
an experiment cell, scoring a population of power assignments, batched
feasibility sweeps — still paid one Python-level dispatch per pair.
This module closes that gap:

* :class:`ContextBatch` — a fixed collection of pairs.  When every pair
  has the same request count and direction (the common case: trials of
  one experiment cell), the per-pair gain matrices are **stacked** into
  one ``(B, n, n)`` array and margins/feasibility for the whole batch
  are computed in single vectorized passes.  The stack is assembled
  through the gain backend's block primitives
  (:meth:`~repro.core.gains.GainBackend.cross_block_u`), so lossless
  sparse (``epsilon = 0``) and array/device-resident contexts stack
  too — only ragged batches and ε-pruned (lossy) backends fall back to
  a loop over pooled per-pair contexts — still cached, just not
  stacked.
* :class:`ContextPool` — a strong-reference working set of contexts.
  :func:`repro.core.context.get_context` caches through a small global
  LRU; the pool pins a batch's contexts for its lifetime so a sweep
  over hundreds of pairs cannot thrash that LRU.
* :meth:`ContextBatch.first_fit_schedules` /
  :meth:`ContextBatch.local_search_schedules` — batched **scheduling**,
  not just batched validation: the stacked gains feed the vectorized
  lockstep kernels (:func:`repro.core.kernels.stacked_first_fit`,
  :func:`repro.core.kernels.stacked_local_search`), emitting per-pair
  schedules identical to scheduling each pair alone.

Numerical contract: the stacked path reproduces the per-context
results bit-for-bit — gain matrices are the cached per-context arrays
(stacked, not recomputed), and reductions run along the trailing axis
exactly as the 2-D ``_class_sum`` does per slice.  The conformance
tests in ``tests/core/test_batch.py`` assert exact equality.
"""

from __future__ import annotations

import logging
import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.context import (
    DEFAULT_RTOL,
    InterferenceContext,
    _margins_from,
    get_context,
)
from repro.core.errors import InvalidScheduleError
from repro.core.gains import (
    DEFAULT_TILE_ROWS,
    resolve_array_namespace,
    resolve_backend,
    resolve_sparse_epsilon,
)
from repro.core.instance import Instance
from repro.core.kernels import (
    first_fit_colors,
    kernels_enabled,
    stacked_first_fit,
    stacked_local_search,
)
from repro.core.schedule import Schedule, build_schedule

PairLike = Tuple[Instance, np.ndarray]
ColorsLike = Union[None, np.ndarray, Sequence[Optional[np.ndarray]]]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class BatchFallbackInfo:
    """Why a :class:`ContextBatch` could not take the stacked fast path.

    Attached as :attr:`ContextBatch.fallback` (``None`` when the batch
    is stacked) and surfaced in
    :class:`repro.api.Provenance.batch_fallback`, so the pooled
    per-pair fallback is a *visible* property of a result instead of a
    silent performance cliff.

    Attributes
    ----------
    reasons:
        Machine-readable reason tags, any of ``"ragged_n"`` (pairs
        disagree on request count), ``"mixed_direction"`` (directed and
        bidirectional pairs mixed), ``"lossy_backend"`` (a pair uses an
        ε-pruned sparse backend — the stacked kernels carry no
        flip-risk certification, so lossy pairs keep the certifying
        per-pair path).
    pairs:
        Batch size.
    detail:
        Human-readable one-liner (also the logged message).
    """

    reasons: Tuple[str, ...]
    pairs: int
    detail: str


# Call sites that already logged a lossy-backend fallback WARNING —
# keyed like :func:`repro._deprecation.warn_deprecated` so a batch
# constructed inside a loop warns once, not once per construction.
_warned_fallback_sites: Set[Tuple[str, int]] = set()


def reset_batch_fallback_registry() -> None:
    """Forget which call sites already logged a fallback ``WARNING``
    (repeats log at ``DEBUG``).  Mirrors
    :func:`repro._deprecation.reset_deprecation_registry`; used by
    tests."""
    _warned_fallback_sites.clear()


def _fallback_call_site() -> Tuple[str, int]:
    """``(filename, lineno)`` of the first frame outside this module —
    the user code constructing the batch."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter-dependent
        return ("<unknown>", 0)
    return (frame.f_code.co_filename, frame.f_lineno)


def _diagnose_fallback(contexts: List[InterferenceContext]) -> Optional[BatchFallbackInfo]:
    """The :class:`BatchFallbackInfo` for *contexts*, or ``None`` when
    the batch can stack.  The lossy-backend reason (the caller asked
    for batching but gets a per-pair loop) logs at ``WARNING`` once per
    call site — ``DEBUG`` on repeats — while shape mismatches (ragged
    batches are routine) always log at ``DEBUG``."""
    first = contexts[0]
    reasons = []
    if any(ctx.n != first.n for ctx in contexts):
        reasons.append("ragged_n")
    if any(
        ctx.instance.direction is not first.instance.direction
        for ctx in contexts
    ):
        reasons.append("mixed_direction")
    if any(
        ctx.backend_name == "sparse" and ctx.sparse_epsilon > 0
        for ctx in contexts
    ):
        reasons.append("lossy_backend")
    if not reasons:
        return None
    info = BatchFallbackInfo(
        reasons=tuple(reasons),
        pairs=len(contexts),
        detail=(
            f"ContextBatch of {len(contexts)} pairs falls back to pooled "
            f"per-pair contexts ({', '.join(reasons)}); queries stay "
            "correct but are not stacked into one (B, n, n) pass"
        ),
    )
    level = logging.DEBUG
    if "lossy_backend" in reasons:
        site = _fallback_call_site()
        if site not in _warned_fallback_sites:
            _warned_fallback_sites.add(site)
            level = logging.WARNING
    logger.log(level, info.detail)
    return info


class ContextPool:
    """A strong-reference working set of :class:`InterferenceContext`.

    The global cache of :func:`get_context` is a bounded LRU
    (:func:`repro.core.context.context_cache_limit` contexts across all
    instances) and only lives as long as the instances do.  A pool pins
    the contexts of a working set (a batch, a sweep, a simulation
    episode) so repeated passes hit warm gain matrices regardless of
    what else runs in between.

    Parameters
    ----------
    max_contexts:
        Optional LRU bound on pinned contexts (``None`` = unbounded).
    """

    def __init__(self, max_contexts: Optional[int] = None):
        if max_contexts is not None and max_contexts < 1:
            raise ValueError("max_contexts must be >= 1 or None")
        self.max_contexts = max_contexts
        self._contexts: "OrderedDict[Tuple, InterferenceContext]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._contexts)

    def get(
        self,
        instance: Instance,
        powers: np.ndarray,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        backend: Optional[str] = None,
        sparse_epsilon: Optional[float] = None,
        array_namespace: Optional[str] = None,
        device: Optional[object] = None,
    ) -> InterferenceContext:
        """The pooled context for ``(instance, powers)`` (pinned).

        *backend*, *sparse_epsilon*, *array_namespace* and *device*
        default to the process-wide gain backend settings; the resolved
        values are part of the pool key (exactly like
        :func:`get_context`'s cache key), so a pool filled while one
        backend configuration was active never serves those contexts to
        a caller running under another.
        """
        powers_arr = np.asarray(powers, dtype=float)
        backend_name = resolve_backend(backend)
        epsilon = (
            resolve_sparse_epsilon(sparse_epsilon)
            if backend_name == "sparse"
            else 0.0
        )
        namespace = (
            resolve_array_namespace(array_namespace)
            if backend_name == "array"
            else ""
        )
        if backend_name != "array":
            device = None
        key = (
            id(instance),
            powers_arr.tobytes(),
            instance.beta if beta is None else float(beta),
            instance.noise if noise is None else float(noise),
            backend_name,
            epsilon,
            namespace,
            "" if device is None else str(device),
        )
        context = self._contexts.get(key)
        if context is None:
            context = get_context(
                instance,
                powers_arr,
                beta=beta,
                noise=noise,
                backend=backend_name,
                sparse_epsilon=epsilon,
                array_namespace=namespace or None,
                device=device,
            )
            self._contexts[key] = context
            if (
                self.max_contexts is not None
                and len(self._contexts) > self.max_contexts
            ):
                self._contexts.popitem(last=False)
        else:
            self._contexts.move_to_end(key)
        return context

    def warm(self, pairs: Sequence[PairLike]) -> "ContextPool":
        """Prebuild gain backends for every pair; returns ``self``."""
        for instance, powers in pairs:
            context = self.get(instance, powers)
            context.backend  # noqa: B018 - touch to force the lazy build
            context.signals
        return self

    def clear(self) -> None:
        """Drop every pinned context (the global cache may retain them)."""
        self._contexts.clear()


class ContextBatch:
    """Vectorized interference queries over a batch of pairs.

    Parameters
    ----------
    pairs:
        Sequence of ``(instance, powers)`` pairs.  Per-pair contexts are
        fetched through *pool* (shared caching), so building a batch for
        pairs that were already queried individually is cheap.
    pool:
        Optional :class:`ContextPool` to pin the contexts in; a private
        pool is created when omitted.
    backend, sparse_epsilon, array_namespace, device:
        Optional gain-backend preference applied to every pair's
        context (``None`` follows the process default, exactly like
        :func:`repro.core.context.get_context`).

    Notes
    -----
    When every pair has the same ``n`` and direction on a lossless
    backend the batch is *stacked*: queries run on one ``(B, n, n)``
    gain stack, assembled tile-by-tile through the backend block
    primitives (no per-context dense materialization).  Otherwise
    ``stacked`` is ``False``, :attr:`fallback` carries a
    :class:`BatchFallbackInfo` naming why, and queries loop over the
    pooled contexts (list-valued results).  Either way the numbers are
    identical to querying each pair's own context.
    """

    def __init__(
        self,
        pairs: Sequence[PairLike],
        pool: Optional[ContextPool] = None,
        backend: Optional[str] = None,
        sparse_epsilon: Optional[float] = None,
        array_namespace: Optional[str] = None,
        device: Optional[object] = None,
    ):
        if len(pairs) == 0:
            raise ValueError("a ContextBatch needs at least one pair")
        self.pool = ContextPool() if pool is None else pool
        self.contexts: List[InterferenceContext] = [
            self.pool.get(
                instance,
                powers,
                backend=backend,
                sparse_epsilon=sparse_epsilon,
                array_namespace=array_namespace,
                device=device,
            )
            for instance, powers in pairs
        ]
        # Stacking needs same-shape pairs and a lossless backend (the
        # stacked kernels carry no flip-risk counters); ragged or
        # ε-pruned batches take the pooled per-pair fallback (every
        # query and the scheduling kernels are backend-generic there),
        # recorded as a structured :class:`BatchFallbackInfo` instead
        # of a silent switch.
        self.fallback = _diagnose_fallback(self.contexts)
        self.stacked = self.fallback is None
        self._signals: Optional[np.ndarray] = None
        self._gains: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._gains_t: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_schedules(
        cls,
        instances: Union[Instance, Sequence[Instance]],
        schedules: Sequence[Schedule],
        pool: Optional[ContextPool] = None,
    ) -> "ContextBatch":
        """A batch pairing each schedule's powers with its instance.

        *instances* may be a single instance (shared by all schedules)
        or one instance per schedule.
        """
        if isinstance(instances, Instance):
            instances = [instances] * len(schedules)
        if len(instances) != len(schedules):
            raise ValueError(
                f"{len(instances)} instances for {len(schedules)} schedules"
            )
        pairs = [
            (instance, schedule.powers)
            for instance, schedule in zip(instances, schedules)
        ]
        return cls(pairs, pool=pool)

    # ------------------------------------------------------------------
    # Stacked state
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.contexts)

    @property
    def n(self) -> int:
        """Request count of a stacked batch (raises when ragged)."""
        if not self.stacked:
            raise ValueError("ragged batch has no single request count")
        return self.contexts[0].n

    def _stacked_signals(self) -> np.ndarray:
        if self._signals is None:
            self._signals = np.stack([ctx.signals for ctx in self.contexts])
        return self._signals

    def _assemble_stack(self, transposed: bool) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(B, n, n)`` gain stacks, assembled through backend
        block primitives.

        All-dense batches stack the cached per-context arrays directly;
        any other lossless backend (``epsilon = 0`` sparse, array) is
        tiled into the preallocated stack via
        :meth:`~repro.core.gains.GainBackend.cross_block_u` /
        ``cross_block_v`` in :data:`~repro.core.gains.DEFAULT_TILE_ROWS`
        row strips — the backend never materializes its own full dense
        copy.  Block reconstruction is bit-identical to the dense
        arrays (the backend conformance contract), so the stacked
        queries stay exact.
        """
        if all(ctx.backend_name == "dense" for ctx in self.contexts):
            directed = all(
                ctx.gains_u is ctx.gains_v for ctx in self.contexts
            )
            if transposed:
                # Transpose straight into the stack instead of stacking
                # the per-context transpose caches: materializing
                # ``ctx.gains_ut`` for every pair would leave B extra
                # (n, n) arrays resident with no later use.  A transpose
                # is pure element reordering, so the stacked values are
                # bitwise the cached transposes either way.
                stack_u = np.empty((len(self), self.n, self.n))
                for index, ctx in enumerate(self.contexts):
                    stack_u[index] = ctx.gains_u.T
                if directed:
                    return stack_u, stack_u
                stack_v = np.empty_like(stack_u)
                for index, ctx in enumerate(self.contexts):
                    stack_v[index] = ctx.gains_v.T
                return stack_u, stack_v
            stack_u = np.stack([ctx.gains_u for ctx in self.contexts])
            if directed:
                return stack_u, stack_u
            return stack_u, np.stack([ctx.gains_v for ctx in self.contexts])
        n = self.n
        all_idx = np.arange(n)
        directed = all(ctx.backend.directed for ctx in self.contexts)
        stack_u = np.empty((len(self), n, n))
        stack_v = stack_u if directed else np.empty((len(self), n, n))
        for index, ctx in enumerate(self.contexts):
            backend = ctx.backend
            for lo in range(0, n, DEFAULT_TILE_ROWS):
                rows = all_idx[lo : lo + DEFAULT_TILE_ROWS]
                hi = lo + rows.size
                if transposed:
                    stack_u[index, lo:hi] = backend.cross_block_u(
                        all_idx, rows
                    ).T
                    if not directed:
                        stack_v[index, lo:hi] = backend.cross_block_v(
                            all_idx, rows
                        ).T
                else:
                    stack_u[index, lo:hi] = backend.cross_block_u(
                        rows, all_idx
                    )
                    if not directed:
                        stack_v[index, lo:hi] = backend.cross_block_v(
                            rows, all_idx
                        )
        return stack_u, stack_v

    def _stacked_gains(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._gains is None:
            self._gains = self._assemble_stack(transposed=False)
        return self._gains

    def _stacked_gains_t(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked contiguous-transpose gains ``(B, n, n)`` for the
        column-consuming scheduler kernels (see
        :attr:`InterferenceContext.gains_ut`)."""
        if self._gains_t is None:
            self._gains_t = self._assemble_stack(transposed=True)
        return self._gains_t

    def _colors_array(self, colors: ColorsLike) -> Optional[np.ndarray]:
        if colors is None:
            return None
        colors_arr = np.asarray(colors)
        if colors_arr.shape != (len(self), self.n):
            raise ValueError(
                f"colors must have shape {(len(self), self.n)}, "
                f"got {colors_arr.shape}"
            )
        return colors_arr

    def _use_stacked(self, colors: ColorsLike) -> bool:
        """Stacked math applies unless *colors* mixes per-pair ``None``
        entries (uncolorable in one ``(B, n)`` array) with vectors."""
        if not self.stacked:
            return False
        if colors is None or isinstance(colors, np.ndarray):
            return True
        return not any(c is None for c in colors)

    def _per_pair_colors(self, colors: ColorsLike) -> List[Optional[np.ndarray]]:
        if colors is None:
            return [None] * len(self)
        if len(colors) != len(self):
            raise ValueError(
                f"{len(colors)} color vectors for {len(self)} pairs"
            )
        return [None if c is None else np.asarray(c) for c in colors]

    def _defaults(
        self, beta: Optional[float], noise: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-pair ``(beta, noise)`` columns for stacked broadcasting."""
        betas = np.asarray(
            [ctx.beta if beta is None else float(beta) for ctx in self.contexts]
        )
        noises = np.asarray(
            [ctx.noise if noise is None else float(noise) for ctx in self.contexts]
        )
        return betas[:, None], noises[:, None]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def interference(
        self, colors: ColorsLike = None
    ) -> Union[np.ndarray, List[np.ndarray]]:
        """Worst-endpoint same-color interference per pair.

        Stacked batches return a ``(B, n)`` array; ragged batches (or
        per-pair colors mixing ``None`` with vectors) a list of
        per-pair arrays.  *colors* is ``None`` (everyone interferes) or
        one color vector — or ``None`` — per pair.
        """
        if not self._use_stacked(colors):
            return [
                ctx.interference(colors=c)
                for ctx, c in zip(self.contexts, self._per_pair_colors(colors))
            ]
        gains_u, gains_v = self._stacked_gains()
        colors_arr = self._colors_array(colors)
        interf = _stacked_class_sum(gains_u, colors_arr)
        if gains_v is not gains_u:
            interf = np.maximum(interf, _stacked_class_sum(gains_v, colors_arr))
        return interf

    def margins(
        self,
        colors: ColorsLike = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
    ) -> Union[np.ndarray, List[np.ndarray]]:
        """SINR margins per pair (``(B, n)`` stacked, else a list).

        Bit-for-bit identical to calling
        :meth:`InterferenceContext.margins` pair by pair.
        """
        if not self._use_stacked(colors):
            return [
                ctx.margins(colors=c, beta=beta, noise=noise)
                for ctx, c in zip(self.contexts, self._per_pair_colors(colors))
            ]
        betas, noises = self._defaults(beta, noise)
        interf = self.interference(colors=colors)
        return _margins_from(self._stacked_signals(), interf, betas, noises)

    def feasible(
        self,
        colors: ColorsLike = None,
        beta: Optional[float] = None,
        noise: Optional[float] = None,
        rtol: float = DEFAULT_RTOL,
    ) -> np.ndarray:
        """Boolean vector: does each pair satisfy every SINR constraint?"""
        margins = self.margins(colors=colors, beta=beta, noise=noise)
        if isinstance(margins, np.ndarray) and margins.ndim == 2:
            return np.all(margins >= 1.0 - rtol, axis=1)
        return np.asarray([bool(np.all(m >= 1.0 - rtol)) for m in margins])

    # ------------------------------------------------------------------
    # Batched scheduling
    # ------------------------------------------------------------------

    def _first_fit_limits(
        self, beta: Optional[float], rtol: float
    ) -> List[np.ndarray]:
        limits = []
        for index, ctx in enumerate(self.contexts):
            budget = ctx.budgets(beta=beta)
            if np.any(budget < 0):
                bad = int(np.argmax(budget < 0))
                raise InvalidScheduleError(
                    f"pair {index}: request {bad} cannot satisfy its SINR "
                    "constraint even alone; scale the powers first "
                    "(see scale_powers_for_noise)"
                )
            limits.append(budget * (1.0 + rtol))
        return limits

    def first_fit_schedules(
        self,
        orders: Optional[Sequence[Sequence[int]]] = None,
        beta: Optional[float] = None,
        rtol: float = 1e-9,
    ) -> List[Schedule]:
        """First-fit coloring of every pair in the batch.

        Stacked batches run :func:`repro.core.kernels.stacked_first_fit`
        over the ``(B, n, n)`` transposed gain stack — every order
        position is one vectorized admission pass covering all pairs —
        and each returned schedule is bit-identical to calling
        :func:`repro.scheduling.firstfit.first_fit_schedule` on that
        pair alone.  Ragged batches fall back to a per-pair
        :class:`~repro.core.kernels.ScheduleKernel` loop (still the
        kernel path, just not in lockstep).

        Parameters
        ----------
        orders:
            Optional per-pair processing orders (longest link first by
            default, matching ``first_fit_schedule``).
        beta, rtol:
            As in ``first_fit_schedule``.
        """
        if orders is None:
            order_list = [
                np.argsort(-ctx.instance.link_distances, kind="stable")
                for ctx in self.contexts
            ]
        else:
            if len(orders) != len(self):
                raise ValueError(
                    f"{len(orders)} orders for {len(self)} pairs"
                )
            order_list = [np.asarray(order, dtype=int) for order in orders]
        limits = self._first_fit_limits(beta, rtol)

        if self.stacked:
            gains_ut, gains_vt = self._stacked_gains_t()
            colors = stacked_first_fit(
                gains_ut,
                gains_vt,
                np.stack(limits),
                np.stack(order_list),
                finite=all(
                    not ctx.has_infinite_gains for ctx in self.contexts
                ),
            )
            return [
                build_schedule(colors[index], ctx.powers)
                for index, ctx in enumerate(self.contexts)
            ]

        return [
            build_schedule(first_fit_colors(ctx, order, pair_limits), ctx.powers)
            for ctx, order, pair_limits in zip(self.contexts, order_list, limits)
        ]

    def local_search_schedules(
        self,
        schedules: Sequence[Schedule],
        beta: Optional[float] = None,
        max_rounds: Optional[int] = None,
    ) -> List[Schedule]:
        """Local-search improvement of one schedule per pair.

        Stacked batches run
        :func:`repro.core.kernels.stacked_local_search` over the
        ``(B, n, n)`` transposed gain stack — the per-pair dissolution
        attempts advance in lockstep — and each returned schedule is
        identical to calling
        :func:`repro.scheduling.local_search.improve_schedule` on that
        pair alone.  Ragged/lossy batches (or a disabled kernel engine)
        fall back to a per-pair ``improve_schedule`` loop.

        Parameters
        ----------
        schedules:
            One feasible schedule per pair, built from the pair's own
            powers (validated before and after, like the per-pair
            reference).
        beta, max_rounds:
            As in ``improve_schedule``.
        """
        # Lazy import: scheduling sits above core in the layer order.
        from repro.scheduling.local_search import improve_schedule

        if len(schedules) != len(self):
            raise InvalidScheduleError(
                f"{len(schedules)} schedules for {len(self)} pairs"
            )
        for index, (ctx, schedule) in enumerate(
            zip(self.contexts, schedules)
        ):
            if schedule.n != ctx.n:
                raise InvalidScheduleError(
                    f"pair {index}: schedule covers {schedule.n} requests, "
                    f"instance has {ctx.n}"
                )
            if not np.array_equal(schedule.powers, ctx.powers):
                raise InvalidScheduleError(
                    f"pair {index}: schedule powers differ from the batch "
                    "pair powers"
                )

        if not (self.stacked and kernels_enabled()):
            return [
                improve_schedule(
                    ctx.instance, schedule, beta=beta, max_rounds=max_rounds
                )
                for ctx, schedule in zip(self.contexts, schedules)
            ]

        for ctx, schedule in zip(self.contexts, schedules):
            schedule.validate(ctx.instance, beta=beta)
        betas, noises = self._defaults(beta, None)
        gains_ut, gains_vt = self._stacked_gains_t()
        colors = stacked_local_search(
            gains_ut,
            gains_vt,
            np.stack([schedule.compacted().colors for schedule in schedules]),
            self._stacked_signals(),
            betas[:, 0],
            noises[:, 0],
            max_rounds=max_rounds,
            finite=all(not ctx.has_infinite_gains for ctx in self.contexts),
        )
        improved = []
        for index, ctx in enumerate(self.contexts):
            schedule = build_schedule(colors[index], ctx.powers)
            schedule.validate(ctx.instance, beta=beta)
            improved.append(schedule)
        return improved

    def validate_schedules(
        self,
        schedules: Sequence[Schedule],
        rtol: float = DEFAULT_RTOL,
    ) -> None:
        """Validate one schedule per pair in a single batched pass.

        Raises :class:`InvalidScheduleError` naming the first offending
        pair.  Equivalent to ``schedule.validate(instance)`` per pair,
        assuming the batch was built from the schedules' own powers
        (see :meth:`for_schedules`).
        """
        if len(schedules) != len(self):
            raise InvalidScheduleError(
                f"{len(schedules)} schedules for {len(self)} pairs"
            )
        for ctx, schedule in zip(self.contexts, schedules):
            if schedule.n != ctx.n:
                raise InvalidScheduleError(
                    f"schedule covers {schedule.n} requests, "
                    f"instance has {ctx.n}"
                )
            if not np.array_equal(schedule.powers, ctx.powers):
                raise InvalidScheduleError(
                    "schedule powers differ from the batch pair powers"
                )
        colors = [schedule.colors for schedule in schedules]
        feasible = self.feasible(colors=colors, rtol=rtol)
        if not np.all(feasible):
            bad = int(np.flatnonzero(~feasible)[0])
            bad_margins = self.margins(colors=colors)[bad]
            worst = int(np.argmin(bad_margins))
            raise InvalidScheduleError(
                f"pair {bad}: SINR constraint violated, e.g. request {worst} "
                f"has margin {bad_margins[worst]:.4g} (< 1)"
            )


def _stacked_class_sum(
    gains: np.ndarray, colors: Optional[np.ndarray]
) -> np.ndarray:
    """Batched :func:`repro.core.interference._class_sum`.

    ``gains`` is ``(B, n, n)``; *colors* is ``None`` or ``(B, n)``.  The
    reduction runs along the trailing axis, which matches the 2-D row
    sum slice by slice (bit-for-bit).
    """
    if colors is None:
        return gains.sum(axis=2)
    same = colors[:, :, None] == colors[:, None, :]
    n = gains.shape[-1]
    same &= ~np.eye(n, dtype=bool)
    masked = np.where(same, gains, 0.0)
    return masked.sum(axis=2)


def batch_margins(
    pairs: Sequence[PairLike],
    colors: ColorsLike = None,
    pool: Optional[ContextPool] = None,
) -> Union[np.ndarray, List[np.ndarray]]:
    """One-shot :meth:`ContextBatch.margins` over *pairs*."""
    return ContextBatch(pairs, pool=pool).margins(colors=colors)


def batch_validate_schedules(
    instances: Union[Instance, Sequence[Instance]],
    schedules: Sequence[Schedule],
    rtol: float = DEFAULT_RTOL,
    pool: Optional[ContextPool] = None,
) -> None:
    """Batched ``schedule.validate(instance)`` over aligned sequences."""
    batch = ContextBatch.for_schedules(instances, schedules, pool=pool)
    batch.validate_schedules(schedules, rtol=rtol)
