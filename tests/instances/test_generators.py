"""Tests for nested, line and random instance generators."""

import numpy as np
import pytest

from repro.core.instance import Direction
from repro.instances.line_instances import (
    equispaced_line_instance,
    exponential_chain_instance,
)
from repro.instances.nested import nested_instance
from repro.instances.random_instances import (
    clustered_instance,
    random_graph_metric_instance,
    random_tree_metric_instance,
    random_uniform_instance,
)


class TestNested:
    def test_geometry(self):
        inst = nested_instance(3, base=2.0)
        # Pairs at +-2, +-4, +-8.
        assert np.allclose(inst.link_distances, [4.0, 8.0, 16.0])
        assert inst.direction is Direction.BIDIRECTIONAL

    def test_direction_override(self):
        inst = nested_instance(3, direction=Direction.DIRECTED)
        assert inst.direction is Direction.DIRECTED

    def test_nesting_property(self):
        inst = nested_instance(4)
        coords = inst.metric.coordinates
        # Every pair's interval strictly contains the previous one.
        for i in range(1, 4):
            assert coords[2 * i] < coords[2 * (i - 1)]
            assert coords[2 * i + 1] > coords[2 * (i - 1) + 1]

    def test_overflow_guard(self):
        with pytest.raises(ValueError, match="overflow"):
            nested_instance(500)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            nested_instance(0)
        with pytest.raises(ValueError):
            nested_instance(3, base=1.0)


class TestLineInstances:
    def test_equispaced_geometry(self):
        inst = equispaced_line_instance(3, spacing=10.0, link_length=2.0)
        assert np.allclose(inst.link_distances, 2.0)
        assert inst.metric.coordinates[2] == pytest.approx(10.0)

    def test_equispaced_overlap_rejected(self):
        with pytest.raises(ValueError, match="spacing"):
            equispaced_line_instance(3, spacing=1.0, link_length=2.0)

    def test_chain_lengths_grow(self):
        inst = exponential_chain_instance(5, growth=3.0)
        assert np.allclose(inst.link_distances, [3.0**i for i in range(5)])

    def test_chain_default_directed(self):
        assert exponential_chain_instance(3).direction is Direction.DIRECTED


class TestRandomInstances:
    def test_uniform_basic(self, rng):
        inst = random_uniform_instance(12, side=50.0, rng=rng)
        assert inst.n == 12
        assert np.all(inst.link_distances > 0)
        assert np.all(inst.link_distances <= 50.0 * np.sqrt(2) + 1e-9)

    def test_uniform_reproducible(self):
        a = random_uniform_instance(6, rng=3)
        b = random_uniform_instance(6, rng=3)
        assert np.allclose(a.link_distances, b.link_distances)

    def test_uniform_respects_max_link(self, rng):
        inst = random_uniform_instance(
            20, side=100.0, max_link_fraction=0.05, rng=rng
        )
        assert np.all(inst.link_distances <= 5.0 + 1e-9)

    def test_clustered_has_wide_range(self, rng):
        inst = clustered_instance(30, clusters=3, cross_fraction=0.4, rng=rng)
        ratio = inst.link_distances.max() / inst.link_distances.min()
        assert ratio > 5.0

    def test_clustered_single_cluster(self, rng):
        inst = clustered_instance(5, clusters=1, rng=rng)
        assert inst.n == 5

    def test_tree_metric_instance(self, rng):
        inst = random_tree_metric_instance(8, rng=rng)
        assert inst.n == 8
        assert inst.metric.n >= 2

    def test_graph_metric_instance(self, rng):
        inst = random_graph_metric_instance(8, rng=rng)
        assert inst.n == 8

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            random_uniform_instance(0, rng=rng)
        with pytest.raises(ValueError):
            random_uniform_instance(3, max_link_fraction=0.0, rng=rng)
        with pytest.raises(ValueError):
            clustered_instance(3, cross_fraction=2.0, rng=rng)
        with pytest.raises(ValueError):
            random_tree_metric_instance(3, weight_range=(5.0, 1.0), rng=rng)
