"""Multi-process slotted random-access protocol (§6, for real).

:func:`repro.scheduling.distributed.distributed_coloring` *simulates*
the slotted ALOHA protocol inside one process: a single RNG draws
every node's coin, so nothing actually runs distributedly.  This
module stages the same protocol as a genuine message-passing system on
the :class:`~repro.runner.executors.ShardExecutor` abstraction:

* ``W`` worker processes each own a contiguous block of requests and
  keep that block's *private* protocol state — transmission
  probabilities, pending flags, and an RNG stream derived with
  :func:`repro.runner.spec.derive_shard_seed` (deterministic per
  ``(seed, W)`` regardless of executor or host).
* Each slot, every worker draws its own transmission decisions locally
  and announces only *who transmitted* — exactly the information a
  radio broadcast reveals.
* The parent plays the *channel*: it evaluates the slot's SINR
  feasibility over the union of transmitters
  (:meth:`~repro.core.context.InterferenceContext.feasible_mask`) and
  broadcasts the winner set back, as a receiver acknowledgement would.
* Workers apply multiplicative backoff to their own losers; nobody
  ever sees another block's probabilities.

Soundness is inherited from the single-process analysis: a slot's
winners heard all of the slot's transmitters, so they remain feasible
once the losers fall silent — every slot is a valid color class.
Outputs are deterministic for a given ``(seed, workers)`` but differ
from :func:`distributed_coloring` at the same seed, because each block
draws from its own stream (the point: no shared coin exists).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.context import maybe_context
from repro.core.feasibility import feasible_subset_mask
from repro.core.instance import Instance
from repro.core.schedule import Schedule, build_schedule
from repro.distributed.sharded import shard_bounds
from repro.power.base import PowerAssignment
from repro.power.oblivious import SquareRootPower
from repro.runner.executors import ShardExecutor, build_shard_executor
from repro.runner.spec import derive_shard_seed
from repro.scheduling.distributed import DistributedStats, ProtocolStalledError

__all__ = ["ProtocolNodeBlock", "distributed_protocol"]


class ProtocolNodeBlock:
    """Worker-side actor: the protocol state of requests ``[lo, hi)``.

    Holds only what the block's nodes could know locally — their own
    probabilities, their own pending flags, and a private RNG.
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        p0: float,
        backoff: float,
        p_min: float,
        policy: str,
        seed: int,
    ):
        self.lo, self.hi = int(lo), int(hi)
        k = self.hi - self.lo
        self.policy = policy
        self.backoff = float(backoff)
        self.p_min = float(p_min)
        self.probability = np.full(k, float(p0))
        self.pending = np.ones(k, dtype=bool)
        self.rng = np.random.default_rng(int(seed))

    def draw(self) -> np.ndarray:
        """One slot's local coin flips: global indices of this block's
        pending requests that transmit."""
        k = self.pending.size
        transmitting = self.pending & (
            self.rng.uniform(size=k) < self.probability
        )
        return self.lo + np.flatnonzero(transmitting)

    def resolve(self, winners: np.ndarray, losers: np.ndarray) -> int:
        """Apply the channel's verdict to this block; returns how many
        of the block's requests are still pending."""
        mine_w = np.asarray(winners, dtype=int)
        mine_w = mine_w[(mine_w >= self.lo) & (mine_w < self.hi)] - self.lo
        self.pending[mine_w] = False
        if self.policy == "backoff":
            mine_l = np.asarray(losers, dtype=int)
            mine_l = (
                mine_l[(mine_l >= self.lo) & (mine_l < self.hi)] - self.lo
            )
            if mine_l.size:
                self.probability[mine_l] = np.maximum(
                    self.probability[mine_l] * self.backoff, self.p_min
                )
        return int(self.pending.sum())


def _build_node_block(payload: Tuple) -> ProtocolNodeBlock:
    lo, hi, p0, backoff, p_min, policy, seed = payload
    return ProtocolNodeBlock(lo, hi, p0, backoff, p_min, policy, seed)


def distributed_protocol(
    instance: Instance,
    power: Optional[PowerAssignment] = None,
    workers: int = 2,
    executor: Optional[object] = None,
    policy: str = "backoff",
    p0: float = 0.5,
    backoff: float = 0.5,
    p_min: float = 1.0 / 1024.0,
    max_slots: Optional[int] = None,
    seed: int = 0,
) -> Tuple[Schedule, DistributedStats]:
    """Run the slotted protocol as ``W`` message-passing node blocks.

    Parameters mirror
    :func:`~repro.scheduling.distributed.distributed_coloring`, except
    randomness: each block owns a private stream derived from
    ``derive_shard_seed(seed, block)``, so results are a deterministic
    function of ``(seed, workers)`` alone.

    *executor* is a registered executor name (``"serial"`` /
    ``"process"``), an unstarted
    :class:`~repro.runner.executors.ShardExecutor` with matching
    worker count, or ``None`` for the process default.

    Raises
    ------
    ProtocolStalledError
        If the slot budget is exhausted before all requests succeed.
    """
    if policy not in ("fixed", "backoff"):
        raise ValueError(f"unknown policy {policy!r}")
    if not 0 < p0 <= 1:
        raise ValueError(f"p0 must be in (0, 1], got {p0}")
    if not 0 < backoff < 1:
        raise ValueError(f"backoff must be in (0, 1), got {backoff}")
    if not 0 < p_min <= p0:
        raise ValueError("p_min must satisfy 0 < p_min <= p0")
    if power is None:
        power = SquareRootPower()
    powers = power(instance)
    context = maybe_context(instance, powers)
    if max_slots is None:
        max_slots = int(64 * instance.n / p_min)

    workers = int(workers)
    if isinstance(executor, ShardExecutor):
        exec_obj = executor
        if exec_obj.workers != workers:
            raise ValueError(
                f"executor has {exec_obj.workers} workers, "
                f"expected {workers}"
            )
        owns_executor = False
    else:
        name = None if executor is None else str(executor)
        exec_obj = build_shard_executor(name, workers)
        owns_executor = True

    bounds = shard_bounds(instance.n, workers)
    payloads = [
        (lo, hi, p0, backoff, p_min, policy, derive_shard_seed(seed, k))
        for k, (lo, hi) in enumerate(bounds)
    ]
    colors = np.full(instance.n, -1, dtype=int)
    stats = DistributedStats()
    color = 0
    remaining = instance.n
    try:
        exec_obj.start(_build_node_block, payloads)
        for _ in range(max_slots):
            if remaining == 0:
                break
            draws = exec_obj.broadcast("draw")
            transmitters = np.concatenate(
                [np.asarray(d, dtype=int) for d in draws]
            )
            stats.slots += 1
            if transmitters.size == 0:
                stats.idle_slots += 1
                continue
            stats.attempts += int(transmitters.size)
            if context is not None:
                ok = context.feasible_mask(transmitters)
            else:
                ok = feasible_subset_mask(instance, powers, transmitters)
            winners = transmitters[ok]
            losers = transmitters[~ok]
            if winners.size:
                colors[winners] = color
                color += 1
                stats.successes += int(winners.size)
                stats.successes_per_slot.append(int(winners.size))
            else:
                stats.collision_slots += 1
            counts: List[int] = exec_obj.broadcast("resolve", winners, losers)
            remaining = int(sum(counts))
    finally:
        if owns_executor:
            exec_obj.close()

    if remaining:
        raise ProtocolStalledError(
            f"{remaining} requests still pending after {stats.slots} slots"
        )
    return build_schedule(colors, powers, copy_powers=False), stats
