"""E7 — Lemma 6: tree ensembles dominate and have large cores.

For each instance family the experiment samples a tree ensemble and
verifies/measures the two Lemma 6 properties:

1. every tree *dominates* the original metric (hard check, must hold
   always);
2. every node belongs to the core (stretch at most O(log n)) of at
   least a 9/10 fraction of the trees (measured; the constants in the
   stretch bound are reported).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from repro.embedding.tree_ensemble import build_tree_ensemble
from repro.experiments.e03_sqrt_universal import InstanceFactory, default_families
from repro.runner.spec import ExperimentSpec
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.tables import Table


def run_tree_embedding(
    n_values: Sequence[int] = (10, 20, 40),
    families: Optional[Dict[str, InstanceFactory]] = None,
    stretch_factor: float = 8.0,
    trials: int = 2,
    rng: RngLike = 21,
) -> Table:
    """Measure dominance, stretch and core sizes of tree ensembles."""
    if families is None:
        families = default_families()
    rng = ensure_rng(rng)
    table = Table(
        title="E7: Lemma 6 — tree ensembles (dominance, stretch, cores)",
        columns=[
            "family",
            "n_points",
            "r",
            "dominates",
            "median_stretch",
            "fixed_bound",
            "min_core_fraction",
            "calibrated_bound",
            "calibrated_over_log2n",
            "calibrated_core_fraction",
        ],
    )
    table.add_note(
        f"fixed bound = {stretch_factor} * log2(n+1); the calibrated bound "
        "is the smallest giving every node >= 9/10 core membership "
        "(Lemma 6 asserts it is O(log n))"
    )
    for family_name, factory in families.items():
        for n in n_values:
            dominates_all = True
            stretches, core_fracs, rs, n_points = [], [], [], []
            calib_bounds, calib_fracs = [], []
            for child in spawn_rngs(rng, trials):
                instance = factory(n, child)
                metric = instance.metric
                bound = stretch_factor * math.log2(metric.n + 1)
                ensemble = build_tree_ensemble(
                    metric, stretch_bound=bound, rng=child
                )
                for member in ensemble.members:
                    if not member.embedding.dominates(metric):
                        dominates_all = False
                    stretches.append(member.stretch)
                core_fracs.append(
                    float(np.min(ensemble.core_membership_fractions()))
                )
                calibrated = ensemble.calibrated(0.9)
                calib_bounds.append(calibrated.stretch_bound)
                calib_fracs.append(
                    float(np.min(calibrated.core_membership_fractions()))
                )
                rs.append(ensemble.r)
                n_points.append(metric.n)
            all_stretch = np.concatenate(stretches)
            mean_points = float(np.mean(n_points))
            table.add_row(
                family=family_name,
                n_points=mean_points,
                r=float(np.mean(rs)),
                dominates=dominates_all,
                median_stretch=float(np.median(all_stretch)),
                fixed_bound=stretch_factor * math.log2(mean_points + 1),
                min_core_fraction=float(np.mean(core_fracs)),
                calibrated_bound=float(np.mean(calib_bounds)),
                calibrated_over_log2n=float(np.mean(calib_bounds))
                / math.log2(mean_points + 1),
                calibrated_core_fraction=float(np.mean(calib_fracs)),
            )
    return table
SPEC = ExperimentSpec(
    id="e7",
    title="Lemma 6 tree ensembles",
    runner="repro.experiments.e07_tree_embedding:run_tree_embedding",
    full={"n_values": (10, 20, 40), "trials": 2},
    fast={"n_values": (8,), "trials": 1},
    seed=21,
    shard_by="n_values",
    metric="median_stretch",
)
