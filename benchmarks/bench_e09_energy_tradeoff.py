"""E9 — regenerate the §6 performance/energy trade-off table."""

from repro.experiments import run_energy_tradeoff


def test_e09_energy_tradeoff(benchmark, save_table):
    table = benchmark.pedantic(
        run_energy_tradeoff,
        kwargs=dict(n=25, trials=3, rng=41),
        rounds=1,
        iterations=1,
    )
    save_table("e09_energy_tradeoff", table)
    nested = {
        row["assignment"]: row for row in table.rows if row["instance"] == "nested"
    }
    assert nested["linear"]["total_energy"] <= nested["sqrt"]["total_energy"]
    assert nested["sqrt"]["colors"] < nested["linear"]["colors"]
