"""Schedule verification with a detailed report.

:func:`verify_schedule` re-derives every SINR margin and returns a
:class:`VerificationReport` suitable for experiment logs: per-request
margins, the worst offender, per-color class sizes and the total
energy.  ``Schedule.validate`` is the terse raise-on-failure variant;
this module is the explain-everything variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.feasibility import DEFAULT_RTOL, sinr_margins
from repro.core.instance import Instance
from repro.core.schedule import Schedule


@dataclass
class VerificationReport:
    """Outcome of verifying a schedule against an instance."""

    feasible: bool
    num_colors: int
    margins: np.ndarray
    worst_request: int
    worst_margin: float
    class_sizes: Dict[int, int] = field(default_factory=dict)
    total_energy: float = 0.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "FEASIBLE" if self.feasible else "INFEASIBLE"
        return (
            f"{status}: {self.num_colors} colors, worst margin "
            f"{self.worst_margin:.4g} at request {self.worst_request}, "
            f"energy {self.total_energy:.4g}"
        )


def verify_schedule(
    instance: Instance,
    schedule: Schedule,
    beta: Optional[float] = None,
    noise: Optional[float] = None,
    rtol: float = DEFAULT_RTOL,
) -> VerificationReport:
    """Verify *schedule* against *instance* and explain the outcome."""
    if schedule.n != instance.n:
        raise ValueError(
            f"schedule covers {schedule.n} requests, instance has {instance.n}"
        )
    margins = sinr_margins(
        instance, schedule.powers, colors=schedule.colors, beta=beta, noise=noise
    )
    worst = int(np.argmin(margins))
    class_sizes = {
        color: int(members.size) for color, members in schedule.color_classes().items()
    }
    return VerificationReport(
        feasible=bool(np.all(margins >= 1.0 - rtol)),
        num_colors=schedule.num_colors,
        margins=margins,
        worst_request=worst,
        worst_margin=float(margins[worst]),
        class_sizes=class_sizes,
        total_energy=schedule.total_energy(),
    )
