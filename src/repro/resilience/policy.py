"""Retry policies and structured shard-failure records.

A :class:`RetryPolicy` describes how the orchestrator treats a failing
shard: how many attempts it gets, how long to back off between them,
and how long to wait for a worker's result before declaring the attempt
dead.  A :class:`ShardFailure` is what remains of a shard that exhausted
its attempts — the experiment's report carries it (and the run
continues) instead of the whole multi-experiment run aborting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard retry, backoff and deadline policy.

    Parameters
    ----------
    max_attempts:
        Total attempts a shard gets before it is quarantined.  The
        default ``1`` is the historical fail-fast behavior: the first
        failure is final (it still becomes a structured
        :class:`ShardFailure` instead of an exception that aborts
        sibling experiments, unless retries are entirely disabled at
        the call site).
    base_delay:
        Seconds slept before the first retry.  Subsequent retries back
        off exponentially: retry ``k`` (1-based) waits
        ``base_delay * backoff ** (k - 1)`` seconds, capped at
        :attr:`max_delay`.
    deadline:
        Per-shard result deadline in seconds, or ``None`` for no limit.
        With worker processes (``jobs > 1``) a shard whose result does
        not arrive within the deadline counts as a failed attempt and
        the worker pool is rebuilt to reclaim the stuck worker.
        In-process runs (``jobs == 1``) cannot preempt a running shard,
        so the deadline is not enforced there.
    backoff:
        Exponential backoff multiplier between retries (default 2.0).
    max_delay:
        Upper bound on any single backoff sleep (default 30 s).
    """

    max_attempts: int = 1
    base_delay: float = 0.05
    deadline: Optional[float] = None
    backoff: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive or None, got {self.deadline}"
            )
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")

    def delay_before_retry(self, failures: int) -> float:
        """Backoff sleep (seconds) after the *failures*-th failure
        (1-based): ``base_delay * backoff ** (failures - 1)``, capped
        at :attr:`max_delay`."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        return min(
            self.base_delay * self.backoff ** (failures - 1), self.max_delay
        )


@dataclass(frozen=True)
class ShardFailure:
    """A quarantined shard: what failed, how, and how often.

    Attached to the owning experiment's
    :class:`~repro.runner.artifacts.BenchReport` (and serialized into
    its ``BENCH_*.json`` under ``"failures"``) so a partially failed
    run still produces a complete, diffable artifact for every healthy
    shard.
    """

    #: The shard's human-readable key (e.g. ``"n=256"``).
    key: str
    #: The shard's index within its experiment.
    shard_index: int
    #: The derived shard seed (``None`` for seedless experiments).
    seed: Optional[int]
    #: Exception type name (``"BrokenProcessPool"``, ``"TimeoutError"``,
    #: ``"InjectedFault"``, ...).
    error_type: str
    #: The stringified exception (empty for worker-death failures).
    error: str
    #: Attempts consumed before quarantine.
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "shard_index": self.shard_index,
            "seed": self.seed,
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardFailure":
        return cls(
            key=payload["key"],
            shard_index=int(payload["shard_index"]),
            seed=payload.get("seed"),
            error_type=payload.get("error_type", "Exception"),
            error=payload.get("error", ""),
            attempts=int(payload.get("attempts", 1)),
        )
